//! Order-sorted terms, atoms, substitutions and unification.
//!
//! DESIRE represents knowledge "by formulae in order-sorted predicate
//! logic, which can be normalised by a standard transformation into rules".
//! This module provides the term language those rules range over.
//!
//! Conventions follow logic-programming practice: identifiers starting
//! with an uppercase letter are variables, everything else is a constant
//! or function symbol. Numbers are a distinguished constant kind so that
//! calculation components can exchange quantitative facts (reward values,
//! cut-down fractions) with reasoning components.

use crate::ident::Name;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A first-order term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A variable, e.g. `Cutdown`.
    Var(Name),
    /// A symbolic constant, e.g. `utility_agent`.
    Const(Name),
    /// A numeric constant in fixed-point micro-units (so terms stay `Eq`
    /// and hashable); `Term::number(17.0)` stores `17_000_000`.
    Num(i64),
    /// A compound term, e.g. `reward_for(0.4)`.
    App(Name, Vec<Term>),
}

impl Term {
    /// Numeric scaling factor for [`Term::Num`] (micro-units).
    pub const NUM_SCALE: f64 = 1_000_000.0;

    /// Creates a variable term.
    pub fn var(name: impl Into<Name>) -> Term {
        Term::Var(name.into())
    }

    /// Creates a constant term.
    pub fn constant(name: impl Into<Name>) -> Term {
        Term::Const(name.into())
    }

    /// Creates a numeric term (rounded to micro-unit precision).
    pub fn number(value: f64) -> Term {
        Term::Num((value * Self::NUM_SCALE).round() as i64)
    }

    /// Creates a compound term.
    pub fn app(functor: impl Into<Name>, args: Vec<Term>) -> Term {
        Term::App(functor.into(), args)
    }

    /// The numeric value if this is a [`Term::Num`].
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Term::Num(n) => Some(*n as f64 / Self::NUM_SCALE),
            _ => None,
        }
    }

    /// True if the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Const(_) | Term::Num(_) => true,
            Term::App(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// Collects the variables occurring in the term into `out`.
    pub fn variables(&self, out: &mut Vec<Name>) {
        match self {
            Term::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Term::Const(_) | Term::Num(_) => {}
            Term::App(_, args) => {
                for a in args {
                    a.variables(out);
                }
            }
        }
    }

    /// Applies a substitution, replacing bound variables.
    pub fn apply(&self, subst: &Substitution) -> Term {
        match self {
            Term::Var(v) => subst.get(v).cloned().unwrap_or_else(|| self.clone()),
            Term::Const(_) | Term::Num(_) => self.clone(),
            Term::App(f, args) => {
                Term::App(f.clone(), args.iter().map(|a| a.apply(subst)).collect())
            }
        }
    }

    /// Parses a term. Uppercase-initial identifiers become variables,
    /// numeric literals become [`Term::Num`], `f(a, B)` becomes an
    /// application.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the offending position.
    pub fn parse(input: &str) -> Result<Term, ParseError> {
        let mut parser = Parser::new(input);
        let term = parser.term()?;
        parser.expect_end()?;
        Ok(term)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
            Term::Num(n) => {
                let value = *n as f64 / Term::NUM_SCALE;
                if (value - value.round()).abs() < 1e-9 {
                    write!(f, "{}", value.round() as i64)
                } else {
                    write!(f, "{value}")
                }
            }
            Term::App(functor, args) => {
                write!(f, "{functor}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// An atomic formula: predicate applied to terms.
///
/// # Example
///
/// ```
/// use desire::term::{Atom, Term};
///
/// let a = Atom::parse("willing_to_cutdown(customer_3, 0.4)").unwrap();
/// assert_eq!(a.predicate.as_str(), "willing_to_cutdown");
/// assert_eq!(a.args[1], Term::number(0.4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// The predicate symbol.
    pub predicate: Name,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(predicate: impl Into<Name>, args: Vec<Term>) -> Atom {
        Atom {
            predicate: predicate.into(),
            args,
        }
    }

    /// Creates a propositional (0-ary) atom.
    pub fn prop(predicate: impl Into<Name>) -> Atom {
        Atom::new(predicate, Vec::new())
    }

    /// True if all arguments are ground.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }

    /// Collects variables from all arguments.
    pub fn variables(&self) -> Vec<Name> {
        let mut out = Vec::new();
        for a in &self.args {
            a.variables(&mut out);
        }
        out
    }

    /// Applies a substitution to all arguments.
    pub fn apply(&self, subst: &Substitution) -> Atom {
        Atom {
            predicate: self.predicate.clone(),
            args: self.args.iter().map(|a| a.apply(subst)).collect(),
        }
    }

    /// Renames the predicate, keeping the arguments — the core of an
    /// information-link mapping.
    pub fn renamed(&self, predicate: impl Into<Name>) -> Atom {
        Atom {
            predicate: predicate.into(),
            args: self.args.clone(),
        }
    }

    /// Parses an atom such as `p`, `p(a, 1.5, X)`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input.
    pub fn parse(input: &str) -> Result<Atom, ParseError> {
        let mut parser = Parser::new(input);
        let atom = parser.atom()?;
        parser.expect_end()?;
        Ok(atom)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.args.is_empty() {
            return write!(f, "{}", self.predicate);
        }
        write!(f, "{}(", self.predicate)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A variable binding produced by unification.
///
/// Deterministic iteration (BTreeMap) keeps engine runs reproducible.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Substitution {
    bindings: BTreeMap<Name, Term>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Substitution {
        Substitution::default()
    }

    /// Looks up a variable's binding.
    pub fn get(&self, var: &Name) -> Option<&Term> {
        self.bindings.get(var)
    }

    /// Binds `var` to `term`, following existing bindings (no occurs
    /// check needed for our function-free-recursion usage, but performed
    /// anyway for safety).
    ///
    /// Returns `false` (leaving the substitution unchanged) if the binding
    /// would conflict with an existing one or fail the occurs check.
    pub fn bind(&mut self, var: Name, term: Term) -> bool {
        let resolved = term.apply(self);
        if let Some(existing) = self.bindings.get(&var) {
            return existing == &resolved;
        }
        let mut vars = Vec::new();
        resolved.variables(&mut vars);
        if vars.contains(&var) {
            // Occurs check failure (X bound to f(X)).
            return matches!(resolved, Term::Var(ref v) if *v == var);
        }
        self.bindings.insert(var, resolved);
        true
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True if no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Iterates over bindings in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &Term)> {
        self.bindings.iter()
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} ↦ {t}")?;
        }
        write!(f, "}}")
    }
}

/// Unifies two terms under an existing substitution, extending it in
/// place. Returns `false` and may leave partial bindings on failure —
/// callers clone the substitution first (see [`unify_atoms`]).
fn unify_terms(a: &Term, b: &Term, subst: &mut Substitution) -> bool {
    let a = a.apply(subst);
    let b = b.apply(subst);
    match (&a, &b) {
        (Term::Var(v), _) => subst.bind(v.clone(), b.clone()),
        (_, Term::Var(v)) => subst.bind(v.clone(), a.clone()),
        (Term::Const(x), Term::Const(y)) => x == y,
        (Term::Num(x), Term::Num(y)) => x == y,
        (Term::App(f, xs), Term::App(g, ys)) => {
            f == g
                && xs.len() == ys.len()
                && xs.iter().zip(ys).all(|(x, y)| unify_terms(x, y, subst))
        }
        _ => false,
    }
}

/// Attempts to unify two atoms, returning the extending substitution.
///
/// # Example
///
/// ```
/// use desire::term::{unify_atoms, Atom, Substitution, Term};
///
/// let pattern = Atom::parse("bid(Customer, Cutdown)").unwrap();
/// let fact = Atom::parse("bid(c3, 0.4)").unwrap();
/// let subst = unify_atoms(&pattern, &fact, &Substitution::new()).unwrap();
/// assert_eq!(subst.get(&"Customer".into()), Some(&Term::constant("c3")));
/// ```
pub fn unify_atoms(a: &Atom, b: &Atom, base: &Substitution) -> Option<Substitution> {
    if a.predicate != b.predicate || a.args.len() != b.args.len() {
        return None;
    }
    let mut subst = base.clone();
    for (x, y) in a.args.iter().zip(&b.args) {
        if !unify_terms(x, y, &mut subst) {
            return None;
        }
    }
    Some(subst)
}

/// Error produced when parsing terms, atoms or rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte position of the error in the input.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A small recursive-descent parser shared by [`Term::parse`],
/// [`Atom::parse`] and `Rule::parse`.
pub(crate) struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(input: &'a str) -> Parser<'a> {
        Parser { input, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    pub(crate) fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    pub(crate) fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    pub(crate) fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest().chars().next()
    }

    pub(crate) fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    pub(crate) fn eat_str(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{c}'")))
        }
    }

    pub(crate) fn expect_end(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        if self.rest().is_empty() {
            Ok(())
        } else {
            Err(self.error("trailing input"))
        }
    }

    pub(crate) fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.rest().is_empty()
    }

    fn identifier(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        let len = rest
            .char_indices()
            .take_while(|&(_, c)| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        if len == 0 {
            return Err(self.error("expected identifier"));
        }
        let ident = &rest[..len];
        if !ident
            .chars()
            .next()
            .map(|c| c.is_ascii_alphabetic())
            .unwrap_or(false)
        {
            return Err(self.error("identifier must start with a letter"));
        }
        self.pos += len;
        Ok(ident)
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        let mut len = 0;
        let bytes = rest.as_bytes();
        if len < bytes.len() && (bytes[len] == b'-' || bytes[len] == b'+') {
            len += 1;
        }
        let digits_start = len;
        while len < bytes.len() && (bytes[len].is_ascii_digit() || bytes[len] == b'.') {
            len += 1;
        }
        if len == digits_start {
            return Err(self.error("expected number"));
        }
        let text = &rest[..len];
        let value: f64 = text
            .parse()
            .map_err(|_| self.error(format!("malformed number '{text}'")))?;
        self.pos += len;
        Ok(value)
    }

    pub(crate) fn term(&mut self) -> Result<Term, ParseError> {
        match self.peek() {
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => {
                Ok(Term::number(self.number()?))
            }
            Some(c) if c.is_ascii_alphabetic() => {
                let ident = self.identifier()?;
                if self.eat('(') {
                    let mut args = Vec::new();
                    if !self.eat(')') {
                        loop {
                            args.push(self.term()?);
                            if self.eat(')') {
                                break;
                            }
                            self.expect(',')?;
                        }
                    }
                    Ok(Term::app(ident, args))
                } else if c.is_ascii_uppercase() {
                    Ok(Term::var(ident))
                } else {
                    Ok(Term::constant(ident))
                }
            }
            _ => Err(self.error("expected term")),
        }
    }

    pub(crate) fn atom(&mut self) -> Result<Atom, ParseError> {
        let ident = self.identifier()?;
        let mut args = Vec::new();
        if self.eat('(') && !self.eat(')') {
            loop {
                args.push(self.term()?);
                if self.eat(')') {
                    break;
                }
                self.expect(',')?;
            }
        }
        Ok(Atom::new(ident, args))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_terms() {
        assert_eq!(Term::parse("abc").unwrap(), Term::constant("abc"));
        assert_eq!(Term::parse("Xyz").unwrap(), Term::var("Xyz"));
        assert_eq!(Term::parse("1.5").unwrap(), Term::number(1.5));
        assert_eq!(Term::parse("-2").unwrap(), Term::number(-2.0));
        assert_eq!(
            Term::parse("f(a, X, 3)").unwrap(),
            Term::app(
                "f",
                vec![Term::constant("a"), Term::var("X"), Term::number(3.0)]
            )
        );
        assert!(Term::parse("f(a,,b)").is_err());
        assert!(Term::parse("f(a) junk").is_err());
        assert!(Term::parse("").is_err());
    }

    #[test]
    fn parse_nested_terms() {
        let t = Term::parse("g(f(X), h(1, c))").unwrap();
        assert_eq!(t.to_string(), "g(f(X), h(1, c))");
        assert!(!t.is_ground());
    }

    #[test]
    fn numbers_are_fixed_point() {
        assert_eq!(Term::number(0.4), Term::number(0.4000000001));
        assert_eq!(Term::number(17.0).as_number(), Some(17.0));
        assert_eq!(Term::constant("x").as_number(), None);
    }

    #[test]
    fn parse_atoms() {
        let a = Atom::parse("p").unwrap();
        assert!(a.args.is_empty());
        let b = Atom::parse("bid(c3, 0.4)").unwrap();
        assert_eq!(b.args.len(), 2);
        assert!(b.is_ground());
        let c = Atom::parse("bid(C, F)").unwrap();
        assert!(!c.is_ground());
        assert_eq!(c.variables().len(), 2);
    }

    #[test]
    fn display_roundtrip() {
        for text in ["p", "bid(c3, 0.4)", "f(g(X), 2)", "q(a, B, c)"] {
            let atom_or_term = Atom::parse(text);
            if let Ok(a) = atom_or_term {
                assert_eq!(Atom::parse(&a.to_string()).unwrap(), a, "roundtrip {text}");
            }
        }
    }

    #[test]
    fn ground_substitution_application() {
        let mut subst = Substitution::new();
        assert!(subst.bind("X".into(), Term::constant("c3")));
        let atom = Atom::parse("bid(X, 0.4)").unwrap();
        assert_eq!(atom.apply(&subst), Atom::parse("bid(c3, 0.4)").unwrap());
    }

    #[test]
    fn bind_conflicts_are_rejected() {
        let mut subst = Substitution::new();
        assert!(subst.bind("X".into(), Term::constant("a")));
        assert!(subst.bind("X".into(), Term::constant("a")));
        assert!(!subst.bind("X".into(), Term::constant("b")));
        assert_eq!(subst.len(), 1);
    }

    #[test]
    fn occurs_check() {
        let mut subst = Substitution::new();
        assert!(!subst.bind("X".into(), Term::app("f", vec![Term::var("X")])));
    }

    #[test]
    fn unify_ground_atoms() {
        let a = Atom::parse("p(a, 1)").unwrap();
        assert!(unify_atoms(&a, &a, &Substitution::new()).is_some());
        let b = Atom::parse("p(a, 2)").unwrap();
        assert!(unify_atoms(&a, &b, &Substitution::new()).is_none());
        let c = Atom::parse("q(a, 1)").unwrap();
        assert!(unify_atoms(&a, &c, &Substitution::new()).is_none());
    }

    #[test]
    fn unify_with_variables() {
        let pattern = Atom::parse("bid(Customer, Cutdown)").unwrap();
        let fact = Atom::parse("bid(c7, 0.3)").unwrap();
        let subst = unify_atoms(&pattern, &fact, &Substitution::new()).unwrap();
        assert_eq!(subst.get(&"Customer".into()), Some(&Term::constant("c7")));
        assert_eq!(subst.get(&"Cutdown".into()), Some(&Term::number(0.3)));
    }

    #[test]
    fn unify_repeated_variable() {
        let pattern = Atom::parse("eq(X, X)").unwrap();
        let same = Atom::parse("eq(a, a)").unwrap();
        let diff = Atom::parse("eq(a, b)").unwrap();
        assert!(unify_atoms(&pattern, &same, &Substitution::new()).is_some());
        assert!(unify_atoms(&pattern, &diff, &Substitution::new()).is_none());
    }

    #[test]
    fn unify_compound_args() {
        let pattern = Atom::parse("holds(at(X, T))").unwrap();
        let fact = Atom::parse("holds(at(home, 5))").unwrap();
        let subst = unify_atoms(&pattern, &fact, &Substitution::new()).unwrap();
        assert_eq!(subst.get(&"X".into()), Some(&Term::constant("home")));
        assert_eq!(subst.get(&"T".into()), Some(&Term::number(5.0)));
    }

    #[test]
    fn unify_extends_base_substitution() {
        let mut base = Substitution::new();
        base.bind("C".into(), Term::constant("c1"));
        let pattern = Atom::parse("bid(C, F)").unwrap();
        let fact1 = Atom::parse("bid(c1, 0.2)").unwrap();
        let fact2 = Atom::parse("bid(c2, 0.2)").unwrap();
        assert!(unify_atoms(&pattern, &fact1, &base).is_some());
        assert!(unify_atoms(&pattern, &fact2, &base).is_none());
    }

    #[test]
    fn substitution_display() {
        let mut s = Substitution::new();
        s.bind("X".into(), Term::number(1.0));
        assert!(s.to_string().contains("X ↦ 1"));
    }

    #[test]
    fn parse_error_display() {
        let err = Term::parse("(").unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }
}
