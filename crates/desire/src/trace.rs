//! Execution traces: everything the kernel did, in order.
//!
//! Traces are the raw material of compositional verification (the
//! companion ICMAS'98 paper verifies the load-balancing system by proving
//! temporal properties over exactly this kind of execution history).

use crate::engine::TruthValue;
use crate::ident::{ComponentPath, Name};
use crate::term::Atom;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single event in an execution trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A component was activated and derived `derived` new facts.
    Activated {
        /// Path of the component.
        path: ComponentPath,
        /// Number of facts newly derived during the activation.
        derived: usize,
    },
    /// An information link transferred facts.
    LinkFired {
        /// Path of the composed component owning the link.
        path: ComponentPath,
        /// The link's name.
        link: Name,
        /// Facts that changed the destination.
        transferred: usize,
    },
    /// A fact became newly known at a component's output interface.
    FactDerived {
        /// Path of the component.
        path: ComponentPath,
        /// The fact.
        atom: Atom,
        /// Its new truth value.
        value: TruthValue,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Activated { path, derived } => {
                write!(f, "activate {path} (+{derived})")
            }
            TraceEvent::LinkFired {
                path,
                link,
                transferred,
            } => {
                write!(f, "link {path}::{link} (→{transferred})")
            }
            TraceEvent::FactDerived { path, atom, value } => {
                write!(f, "derive {path}: {atom} = {value}")
            }
        }
    }
}

/// An append-only execution history.
///
/// # Example
///
/// ```
/// use desire::trace::{Trace, TraceEvent};
/// use desire::ident::ComponentPath;
///
/// let mut trace = Trace::new();
/// trace.push(TraceEvent::Activated { path: ComponentPath::root(), derived: 2 });
/// assert_eq!(trace.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Clears the trace.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Index of the first `FactDerived` event whose atom equals `atom`
    /// (at any component), if any.
    pub fn first_derivation(&self, atom: &Atom) -> Option<usize> {
        self.events
            .iter()
            .position(|e| matches!(e, TraceEvent::FactDerived { atom: a, .. } if a == atom))
    }

    /// All derivations of facts at components whose leaf name equals
    /// `component`.
    pub fn derivations_at<'a>(
        &'a self,
        component: &'a Name,
    ) -> impl Iterator<Item = (&'a Atom, TruthValue)> + 'a {
        self.events.iter().filter_map(move |e| match e {
            TraceEvent::FactDerived { path, atom, value } if path.leaf() == Some(component) => {
                Some((atom, *value))
            }
            _ => None,
        })
    }

    /// Number of activations of components whose leaf name equals
    /// `component`.
    pub fn activation_count(&self, component: &Name) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(e, TraceEvent::Activated { path, .. } if path.leaf() == Some(component))
            })
            .count()
    }

    /// Renders the trace as one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(&format!("{i:4}  {e}\n"));
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(leaf: &str) -> ComponentPath {
        ComponentPath::root().child(leaf.into())
    }

    fn derived(leaf: &str, atom: &str) -> TraceEvent {
        TraceEvent::FactDerived {
            path: path(leaf),
            atom: Atom::parse(atom).unwrap(),
            value: TruthValue::True,
        }
    }

    #[test]
    fn push_and_query() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(derived("ua", "announce(17)"));
        t.push(derived("ca", "bid(0.2)"));
        t.push(TraceEvent::Activated {
            path: path("ua"),
            derived: 1,
        });
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.first_derivation(&Atom::parse("bid(0.2)").unwrap()),
            Some(1)
        );
        assert_eq!(t.first_derivation(&Atom::prop("missing")), None);
    }

    #[test]
    fn derivations_at_filters_by_leaf() {
        let mut t = Trace::new();
        t.push(derived("ua", "a"));
        t.push(derived("ca", "b"));
        t.push(derived("ua", "c"));
        let ua: Vec<_> = t
            .derivations_at(&"ua".into())
            .map(|(a, _)| a.to_string())
            .collect();
        assert_eq!(ua, vec!["a", "c"]);
    }

    #[test]
    fn activation_count() {
        let mut t = Trace::new();
        t.push(TraceEvent::Activated {
            path: path("ua"),
            derived: 0,
        });
        t.push(TraceEvent::Activated {
            path: path("ua"),
            derived: 2,
        });
        t.push(TraceEvent::Activated {
            path: path("ca"),
            derived: 1,
        });
        assert_eq!(t.activation_count(&"ua".into()), 2);
        assert_eq!(t.activation_count(&"zz".into()), 0);
    }

    #[test]
    fn render_contains_events() {
        let mut t = Trace::new();
        t.push(TraceEvent::LinkFired {
            path: path("sys"),
            link: "l1".into(),
            transferred: 3,
        });
        let text = t.to_string();
        assert!(text.contains("l1"));
        assert!(text.contains("→3"));
    }

    #[test]
    fn clear_empties() {
        let mut t = Trace::new();
        t.push(derived("x", "a"));
        t.clear();
        assert!(t.is_empty());
    }
}
