//! Compositional verification: temporal properties over execution traces.
//!
//! The companion paper (Brazier et al., ICMAS'98; also Jonker & Treur,
//! COMPOS'97) verifies the load-balancing system by establishing
//! properties of components from properties of their sub-components.
//! Here a [`Property`] is checked against a recorded [`Trace`]; the
//! negotiation crate uses these to verify pro-activeness ("the UA
//! eventually announces") and reactiveness ("every announcement is
//! eventually answered").

use crate::engine::TruthValue;
use crate::ident::Name;
use crate::term::{unify_atoms, Atom, Substitution};
use crate::trace::{Trace, TraceEvent};
use std::fmt;

/// A checkable property of an execution trace.
///
/// Atom arguments may contain variables; a derivation event matches if it
/// unifies with the pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum Property {
    /// Some fact matching `atom` is eventually derived at a component
    /// whose leaf name is `component` (pro-activeness).
    EventuallyDerived {
        /// Leaf name of the component.
        component: Name,
        /// Pattern to match (may contain variables).
        atom: Atom,
        /// Required truth value of the derivation.
        value: TruthValue,
    },
    /// No fact matching `atom` is ever derived at `component` (safety).
    NeverDerived {
        /// Leaf name of the component.
        component: Name,
        /// Pattern to match.
        atom: Atom,
    },
    /// Every derivation matching `trigger` is followed (strictly later)
    /// by a derivation matching `response` (reactiveness).
    Responds {
        /// The triggering pattern.
        trigger: Atom,
        /// The response pattern.
        response: Atom,
    },
    /// The first derivation matching `first` precedes the first matching
    /// `then` (ordering).
    DerivedBefore {
        /// Pattern expected earlier.
        first: Atom,
        /// Pattern expected later.
        then: Atom,
    },
    /// The component with leaf name `component` was activated at least
    /// `at_least` times (liveness of control).
    ActivatedAtLeast {
        /// Leaf name of the component.
        component: Name,
        /// Minimum number of activations.
        at_least: usize,
    },
    /// Conjunction of sub-properties (compositional verification: a
    /// system property decomposes into component properties).
    All(Vec<Property>),
}

/// The result of checking a property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Whether the property holds.
    pub holds: bool,
    /// Human-readable explanation (the witness or the failure).
    pub explanation: String,
}

impl Verdict {
    fn pass(explanation: impl Into<String>) -> Verdict {
        Verdict {
            holds: true,
            explanation: explanation.into(),
        }
    }

    fn fail(explanation: impl Into<String>) -> Verdict {
        Verdict {
            holds: false,
            explanation: explanation.into(),
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}",
            if self.holds { "holds" } else { "FAILS" },
            self.explanation
        )
    }
}

fn matches_pattern(pattern: &Atom, atom: &Atom) -> bool {
    unify_atoms(pattern, atom, &Substitution::new()).is_some()
}

/// Positions of derivations matching `pattern` (optionally at a specific
/// component leaf and truth value).
fn derivation_indices(
    trace: &Trace,
    pattern: &Atom,
    component: Option<&Name>,
    value: Option<TruthValue>,
) -> Vec<usize> {
    trace
        .events()
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e {
            TraceEvent::FactDerived {
                path,
                atom,
                value: v,
            } => {
                if let Some(c) = component {
                    if path.leaf() != Some(c) {
                        return None;
                    }
                }
                if let Some(want) = value {
                    if *v != want {
                        return None;
                    }
                }
                matches_pattern(pattern, atom).then_some(i)
            }
            _ => None,
        })
        .collect()
}

impl Property {
    /// Checks the property against a trace.
    pub fn check(&self, trace: &Trace) -> Verdict {
        match self {
            Property::EventuallyDerived {
                component,
                atom,
                value,
            } => {
                let hits = derivation_indices(trace, atom, Some(component), Some(*value));
                if let Some(&i) = hits.first() {
                    Verdict::pass(format!("{atom} derived at event {i} in {component}"))
                } else {
                    Verdict::fail(format!("{atom} never derived ({value}) at {component}"))
                }
            }
            Property::NeverDerived { component, atom } => {
                let hits = derivation_indices(trace, atom, Some(component), None);
                if hits.is_empty() {
                    Verdict::pass(format!("{atom} never derived at {component}"))
                } else {
                    Verdict::fail(format!(
                        "{atom} derived at event {} in {component}",
                        hits[0]
                    ))
                }
            }
            Property::Responds { trigger, response } => {
                let triggers = derivation_indices(trace, trigger, None, None);
                let responses = derivation_indices(trace, response, None, None);
                for &t in &triggers {
                    if !responses.iter().any(|&r| r > t) {
                        return Verdict::fail(format!(
                            "trigger {trigger} at event {t} has no later {response}"
                        ));
                    }
                }
                Verdict::pass(format!(
                    "all {} trigger(s) answered by {response}",
                    triggers.len()
                ))
            }
            Property::DerivedBefore { first, then } => {
                let a = derivation_indices(trace, first, None, None);
                let b = derivation_indices(trace, then, None, None);
                match (a.first(), b.first()) {
                    (Some(&fa), Some(&fb)) if fa < fb => {
                        Verdict::pass(format!("{first} (event {fa}) precedes {then} (event {fb})"))
                    }
                    (Some(&fa), Some(&fb)) => {
                        Verdict::fail(format!("{then} (event {fb}) precedes {first} (event {fa})"))
                    }
                    (None, _) => Verdict::fail(format!("{first} never derived")),
                    (_, None) => Verdict::fail(format!("{then} never derived")),
                }
            }
            Property::ActivatedAtLeast {
                component,
                at_least,
            } => {
                let count = trace.activation_count(component);
                if count >= *at_least {
                    Verdict::pass(format!("{component} activated {count} time(s)"))
                } else {
                    Verdict::fail(format!(
                        "{component} activated {count} time(s), needed {at_least}"
                    ))
                }
            }
            Property::All(props) => {
                for (i, p) in props.iter().enumerate() {
                    let v = p.check(trace);
                    if !v.holds {
                        return Verdict::fail(format!("conjunct {i} fails: {}", v.explanation));
                    }
                }
                Verdict::pass(format!("all {} conjunct(s) hold", props.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::ComponentPath;

    fn trace_with(events: &[(&str, &str)]) -> Trace {
        let mut t = Trace::new();
        for (component, atom) in events {
            t.push(TraceEvent::FactDerived {
                path: ComponentPath::root().child((*component).into()),
                atom: Atom::parse(atom).unwrap(),
                value: TruthValue::True,
            });
        }
        t
    }

    #[test]
    fn eventually_derived() {
        let t = trace_with(&[("ua", "announce(17)")]);
        let p = Property::EventuallyDerived {
            component: "ua".into(),
            atom: Atom::parse("announce(R)").unwrap(),
            value: TruthValue::True,
        };
        assert!(p.check(&t).holds);
        let q = Property::EventuallyDerived {
            component: "ca".into(),
            atom: Atom::parse("announce(R)").unwrap(),
            value: TruthValue::True,
        };
        assert!(!q.check(&t).holds);
    }

    #[test]
    fn never_derived() {
        let t = trace_with(&[("ua", "announce(17)")]);
        let p = Property::NeverDerived {
            component: "ua".into(),
            atom: Atom::parse("retract(X)").unwrap(),
        };
        assert!(p.check(&t).holds);
        let q = Property::NeverDerived {
            component: "ua".into(),
            atom: Atom::parse("announce(X)").unwrap(),
        };
        assert!(!q.check(&t).holds);
    }

    #[test]
    fn responds_requires_later_response() {
        let ok = trace_with(&[("ua", "announce(1)"), ("ca", "bid(1)")]);
        let p = Property::Responds {
            trigger: Atom::parse("announce(X)").unwrap(),
            response: Atom::parse("bid(X)").unwrap(),
        };
        assert!(p.check(&ok).holds);

        let bad = trace_with(&[("ca", "bid(1)"), ("ua", "announce(1)")]);
        assert!(!p.check(&bad).holds);
    }

    #[test]
    fn responds_with_multiple_triggers() {
        let t = trace_with(&[
            ("ua", "announce(1)"),
            ("ca", "bid(1)"),
            ("ua", "announce(2)"),
            ("ca", "bid(2)"),
        ]);
        let p = Property::Responds {
            trigger: Atom::parse("announce(X)").unwrap(),
            response: Atom::parse("bid(Y)").unwrap(),
        };
        assert!(p.check(&t).holds);

        let truncated = trace_with(&[
            ("ua", "announce(1)"),
            ("ca", "bid(1)"),
            ("ua", "announce(2)"),
        ]);
        assert!(!p.check(&truncated).holds);
    }

    #[test]
    fn derived_before() {
        let t = trace_with(&[("ua", "predict(135)"), ("ua", "announce(17)")]);
        let p = Property::DerivedBefore {
            first: Atom::parse("predict(X)").unwrap(),
            then: Atom::parse("announce(Y)").unwrap(),
        };
        assert!(p.check(&t).holds);
        let q = Property::DerivedBefore {
            first: Atom::parse("announce(Y)").unwrap(),
            then: Atom::parse("predict(X)").unwrap(),
        };
        assert!(!q.check(&t).holds);
    }

    #[test]
    fn derived_before_missing_events() {
        let t = trace_with(&[("ua", "predict(1)")]);
        let p = Property::DerivedBefore {
            first: Atom::parse("predict(X)").unwrap(),
            then: Atom::parse("announce(Y)").unwrap(),
        };
        let v = p.check(&t);
        assert!(!v.holds);
        assert!(v.explanation.contains("never derived"));
    }

    #[test]
    fn activated_at_least() {
        let mut t = Trace::new();
        t.push(TraceEvent::Activated {
            path: ComponentPath::root().child("ua".into()),
            derived: 0,
        });
        let p = Property::ActivatedAtLeast {
            component: "ua".into(),
            at_least: 1,
        };
        assert!(p.check(&t).holds);
        let q = Property::ActivatedAtLeast {
            component: "ua".into(),
            at_least: 2,
        };
        assert!(!q.check(&t).holds);
    }

    #[test]
    fn conjunction_reports_failing_conjunct() {
        let t = trace_with(&[("ua", "a")]);
        let p = Property::All(vec![
            Property::EventuallyDerived {
                component: "ua".into(),
                atom: Atom::prop("a"),
                value: TruthValue::True,
            },
            Property::EventuallyDerived {
                component: "ua".into(),
                atom: Atom::prop("b"),
                value: TruthValue::True,
            },
        ]);
        let v = p.check(&t);
        assert!(!v.holds);
        assert!(v.explanation.contains("conjunct 1"));
    }

    #[test]
    fn verdict_display() {
        let v = Verdict::pass("ok");
        assert_eq!(v.to_string(), "holds: ok");
    }
}
