//! Property-based tests of the term language and inference engine.

use desire::engine::{Engine, FactBase, TruthValue};
use desire::kb::{KnowledgeBase, Rule};
use desire::term::{unify_atoms, Atom, Substitution, Term};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}"
}

fn arb_var() -> impl Strategy<Value = String> {
    "[A-Z][a-z0-9]{0,4}"
}

fn arb_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        arb_name().prop_map(Term::constant),
        arb_var().prop_map(Term::var),
        (-1000.0f64..1000.0).prop_map(Term::number),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        (arb_name(), prop::collection::vec(inner, 1..3)).prop_map(|(f, args)| Term::app(f, args))
    })
}

fn arb_ground_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        arb_name().prop_map(Term::constant),
        (-1000.0f64..1000.0).prop_map(Term::number),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (arb_name(), prop::collection::vec(arb_term(), 0..3)).prop_map(|(p, args)| Atom::new(p, args))
}

fn arb_ground_atom() -> impl Strategy<Value = Atom> {
    (arb_name(), prop::collection::vec(arb_ground_term(), 0..3))
        .prop_map(|(p, args)| Atom::new(p, args))
}

proptest! {
    /// Display → parse is the identity on terms.
    #[test]
    fn term_display_parse_roundtrip(term in arb_term()) {
        let text = term.to_string();
        let parsed = Term::parse(&text).unwrap();
        // Numeric display may drop trailing zeros but must round-trip to
        // the same fixed-point value.
        prop_assert_eq!(parsed, term);
    }

    /// Display → parse is the identity on atoms.
    #[test]
    fn atom_display_parse_roundtrip(atom in arb_atom()) {
        let parsed = Atom::parse(&atom.to_string()).unwrap();
        prop_assert_eq!(parsed, atom);
    }

    /// Unification of an atom with itself succeeds and binds nothing new
    /// for ground atoms.
    #[test]
    fn unify_reflexive(atom in arb_ground_atom()) {
        let subst = unify_atoms(&atom, &atom, &Substitution::new());
        prop_assert!(subst.is_some());
        prop_assert!(subst.unwrap().is_empty());
    }

    /// A pattern unified against a ground atom, when applied to the
    /// pattern, yields the ground atom (soundness of unification).
    #[test]
    fn unify_application_soundness(
        predicate in arb_name(),
        args in prop::collection::vec(arb_ground_term(), 0..3),
        var_positions in prop::collection::vec(any::<bool>(), 0..3),
    ) {
        let ground = Atom::new(predicate.clone(), args.clone());
        // Replace some argument positions with fresh variables.
        let pattern_args: Vec<Term> = args
            .iter()
            .enumerate()
            .map(|(i, t)| {
                if var_positions.get(i).copied().unwrap_or(false) {
                    Term::var(format!("V{i}"))
                } else {
                    t.clone()
                }
            })
            .collect();
        let pattern = Atom::new(predicate, pattern_args);
        let subst = unify_atoms(&pattern, &ground, &Substitution::new())
            .expect("pattern must match its own ground instance");
        prop_assert_eq!(pattern.apply(&subst), ground);
    }

    /// Ground facts asserted into a fact base are found with the exact
    /// truth value, and pattern matching finds exactly the facts with
    /// the requested value.
    #[test]
    fn factbase_assert_lookup(
        atoms in prop::collection::btree_set(arb_ground_atom(), 1..20),
    ) {
        let atoms: Vec<Atom> = atoms.into_iter().collect();
        let mut fb = FactBase::new();
        for (i, atom) in atoms.iter().enumerate() {
            let value = if i % 2 == 0 { TruthValue::True } else { TruthValue::False };
            fb.assert(atom.clone(), value);
        }
        prop_assert_eq!(fb.len(), atoms.len());
        for (i, atom) in atoms.iter().enumerate() {
            let expected = if i % 2 == 0 { TruthValue::True } else { TruthValue::False };
            prop_assert_eq!(fb.truth(atom), expected);
        }
    }

    /// The engine is idempotent: running the same KB twice derives
    /// nothing new the second time.
    #[test]
    fn engine_idempotent(
        seeds in prop::collection::vec(arb_name(), 1..5),
    ) {
        // Chain rules a1 => a2 => ... over the generated names.
        let mut kb = KnowledgeBase::new("chain");
        for pair in seeds.windows(2) {
            if pair[0] != pair[1] {
                kb.push(Rule::parse(&format!("{} => {}", pair[0], pair[1])).unwrap());
            }
        }
        let mut fb = FactBase::new();
        fb.assert(Atom::prop(seeds[0].clone()), TruthValue::True);
        let engine = Engine::new();
        engine.infer(&kb, &mut fb).unwrap();
        let snapshot = fb.clone();
        let stats = engine.infer(&kb, &mut fb).unwrap();
        prop_assert_eq!(stats.derived, 0);
        prop_assert_eq!(fb, snapshot);
    }
}
