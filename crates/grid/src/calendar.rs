//! Calendar structure: day types and multi-day horizons.
//!
//! Demand differs between weekdays and weekends (people are home at
//! different hours); the Utility Agent's statistical models need to know
//! which kind of day they are predicting. A [`Horizon`] enumerates
//! consecutive days with their types and seasonal context.

use crate::weather::Season;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of a day, as it affects household behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DayType {
    /// Monday–Friday: morning/evening occupancy peaks.
    Weekday,
    /// Saturday–Sunday: flatter, home-all-day demand.
    Weekend,
}

impl DayType {
    /// Usage-intensity multiplier relative to a weekday.
    pub fn intensity_factor(self) -> f64 {
        match self {
            DayType::Weekday => 1.0,
            DayType::Weekend => 1.08,
        }
    }
}

impl fmt::Display for DayType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DayType::Weekday => "weekday",
            DayType::Weekend => "weekend",
        })
    }
}

/// One calendar day: its index, type and season.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CalendarDay {
    /// Day number since the horizon start (also the weather seed offset).
    pub index: u64,
    /// Weekday or weekend.
    pub day_type: DayType,
    /// The season the day falls in.
    pub season: Season,
}

/// A run of consecutive days starting on a given weekday offset.
///
/// # Example
///
/// ```
/// use powergrid::calendar::{DayType, Horizon};
/// use powergrid::weather::Season;
///
/// // A fortnight starting on a Monday.
/// let horizon = Horizon::new(14, 0, Season::Winter);
/// let weekends = horizon.days().filter(|d| d.day_type == DayType::Weekend).count();
/// assert_eq!(weekends, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Horizon {
    days: u64,
    /// 0 = Monday … 6 = Sunday.
    start_weekday: u8,
    season: Season,
}

impl Horizon {
    /// Creates a horizon of `days` days starting at weekday
    /// `start_weekday` (0 = Monday).
    ///
    /// # Panics
    ///
    /// Panics if `start_weekday > 6` or `days` is zero.
    pub fn new(days: u64, start_weekday: u8, season: Season) -> Horizon {
        assert!(
            start_weekday <= 6,
            "weekday must be 0..=6, got {start_weekday}"
        );
        assert!(days > 0, "a horizon needs at least one day");
        Horizon {
            days,
            start_weekday,
            season,
        }
    }

    /// Number of days covered.
    pub fn len(&self) -> u64 {
        self.days
    }

    /// True if the horizon is empty (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.days == 0
    }

    /// The day at `index`, if within the horizon.
    pub fn day(&self, index: u64) -> Option<CalendarDay> {
        if index >= self.days {
            return None;
        }
        let weekday = (u64::from(self.start_weekday) + index) % 7;
        let day_type = if weekday >= 5 {
            DayType::Weekend
        } else {
            DayType::Weekday
        };
        Some(CalendarDay {
            index,
            day_type,
            season: self.season,
        })
    }

    /// Iterates over the days in order.
    pub fn days(&self) -> impl Iterator<Item = CalendarDay> + '_ {
        (0..self.days).map(move |i| self.day(i).expect("index in range"))
    }

    /// Indices of the weekdays only (prediction models often train on
    /// like-for-like days).
    pub fn weekday_indices(&self) -> Vec<u64> {
        self.days()
            .filter(|d| d.day_type == DayType::Weekday)
            .map(|d| d.index)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn week_structure() {
        let h = Horizon::new(7, 0, Season::Winter);
        let types: Vec<DayType> = h.days().map(|d| d.day_type).collect();
        assert_eq!(
            types,
            vec![
                DayType::Weekday,
                DayType::Weekday,
                DayType::Weekday,
                DayType::Weekday,
                DayType::Weekday,
                DayType::Weekend,
                DayType::Weekend,
            ]
        );
    }

    #[test]
    fn start_offset_shifts_weekend() {
        // Starting on a Saturday.
        let h = Horizon::new(3, 5, Season::Summer);
        let types: Vec<DayType> = h.days().map(|d| d.day_type).collect();
        assert_eq!(
            types,
            vec![DayType::Weekend, DayType::Weekend, DayType::Weekday]
        );
    }

    #[test]
    fn out_of_range_day_is_none() {
        let h = Horizon::new(5, 0, Season::Winter);
        assert!(h.day(4).is_some());
        assert!(h.day(5).is_none());
        assert_eq!(h.len(), 5);
        assert!(!h.is_empty());
    }

    #[test]
    fn weekday_indices_skip_weekends() {
        let h = Horizon::new(10, 0, Season::Autumn);
        let idx = h.weekday_indices();
        assert!(!idx.contains(&5));
        assert!(!idx.contains(&6));
        assert!(idx.contains(&7));
        assert_eq!(idx.len(), 8);
    }

    #[test]
    #[should_panic(expected = "weekday must be")]
    fn bad_weekday_panics() {
        let _ = Horizon::new(7, 7, Season::Winter);
    }

    #[test]
    fn weekend_intensity_above_weekday() {
        assert!(DayType::Weekend.intensity_factor() > DayType::Weekday.intensity_factor());
        assert_eq!(DayType::Weekend.to_string(), "weekend");
    }
}
