//! Aggregate demand curves — the substrate behind Figure 1 of the paper.
//!
//! Summing household profiles over a winter weekday produces the classic
//! demand curve with an evening peak; where it exceeds normal production
//! capacity, the expensive production band of Figure 1 is entered.

use crate::household::{DemandScratch, Household};
use crate::production::ProductionModel;
use crate::series::Series;
use crate::slab::{aggregate_demand_slab_with, PopulationRef};
use crate::time::{Interval, TimeAxis};
use crate::units::KilowattHours;
use crate::weather::WeatherModel;
use serde::{Deserialize, Serialize};

/// Aggregates household demand for a day with the given weather.
///
/// The returned series is in kWh per slot over all households. One
/// [`DemandScratch`] is reused across the whole population, so the hot
/// path allocates nothing per household (byte-identical to summing
/// [`Household::demand_profile`] calls).
pub fn aggregate_demand(
    households: &[Household],
    weather: &Series,
    axis: &TimeAxis,
    seed: u64,
) -> DemandCurve {
    let mean_temp = weather.mean();
    let mut total = Series::zeros(*axis);
    let mut scratch = DemandScratch::new(axis);
    for h in households {
        let profile = h.demand_profile_with(axis, mean_temp, seed, &mut scratch);
        for (slot, load) in total.values_mut().iter_mut().zip(profile) {
            *slot += load;
        }
    }
    DemandCurve::new(total)
}

/// [`aggregate_demand`] over either population backend — dispatches to
/// the per-object path or the batched slab kernel
/// ([`aggregate_demand_slab_with`]); both produce bit-for-bit the same
/// curve for the same population.
pub fn aggregate_demand_ref(
    population: PopulationRef<'_>,
    weather: &Series,
    axis: &TimeAxis,
    seed: u64,
) -> DemandCurve {
    match population {
        PopulationRef::Objects(households) => aggregate_demand(households, weather, axis, seed),
        PopulationRef::Slab(view) => {
            let mut scratch = DemandScratch::new(axis);
            aggregate_demand_slab_with(view, weather, axis, seed, &mut scratch)
        }
    }
}

/// Convenience: demand for a weather model rather than a realised series.
pub fn aggregate_demand_for_model(
    households: &[Household],
    model: &WeatherModel,
    axis: &TimeAxis,
    seed: u64,
) -> DemandCurve {
    let weather = model.temperatures(axis, seed);
    aggregate_demand(households, &weather, axis, seed)
}

/// A demand curve (kWh per slot, aggregated over consumers).
///
/// # Example
///
/// ```
/// use powergrid::prelude::*;
///
/// let axis = TimeAxis::hourly();
/// let homes = PopulationBuilder::new().households(20).build(7);
/// let weather = WeatherModel::winter().temperatures(&axis, 7);
/// let curve = aggregate_demand(&homes, &weather, &axis, 7);
/// let peak = curve.peak_interval(4);
/// assert_eq!(peak.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandCurve {
    series: Series,
}

impl DemandCurve {
    /// Wraps a per-slot energy series as a demand curve.
    pub fn new(series: Series) -> DemandCurve {
        DemandCurve { series }
    }

    /// The underlying series (kWh per slot).
    pub fn series(&self) -> &Series {
        &self.series
    }

    /// The time axis of the curve.
    pub fn axis(&self) -> TimeAxis {
        self.series.axis()
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True if the curve has no slots.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Total energy over the day.
    pub fn total(&self) -> KilowattHours {
        self.series.total()
    }

    /// Energy over an interval.
    pub fn energy_over(&self, interval: Interval) -> KilowattHours {
        self.series.energy_over(interval)
    }

    /// The contiguous window of `width` slots with maximal energy — the
    /// demand peak the Utility Agent wants to shave.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds the day length.
    pub fn peak_interval(&self, width: usize) -> Interval {
        let n = self.len();
        assert!(
            width > 0 && width <= n,
            "peak width {width} out of range (1..={n})"
        );
        let values = self.series.values();
        let mut window: f64 = values[..width].iter().sum();
        let mut best = window;
        let mut best_start = 0;
        for start in 1..=(n - width) {
            window += values[start + width - 1] - values[start - 1];
            if window > best {
                best = window;
                best_start = start;
            }
        }
        Interval::new(best_start, best_start + width)
    }

    /// Slots whose demand exceeds the normal capacity of `production`,
    /// i.e. the slots served by expensive production in Figure 1.
    pub fn slots_above_normal(&self, production: &ProductionModel) -> Vec<usize> {
        let cap = production.normal_capacity_per_slot(self.axis());
        self.series
            .values()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > cap.value())
            .map(|(i, _)| i)
            .collect()
    }

    /// Energy above normal capacity over the whole day (the shaded peak
    /// area of Figure 1).
    pub fn energy_above_normal(&self, production: &ProductionModel) -> KilowattHours {
        let cap = production.normal_capacity_per_slot(self.axis()).value();
        KilowattHours(
            self.series
                .values()
                .iter()
                .map(|&v| (v - cap).max(0.0))
                .sum(),
        )
    }

    /// Applies a uniform relative reduction over `interval` (what the grid
    /// sees when customers implement cut-downs).
    pub fn with_reduction(&self, interval: Interval, fraction: f64) -> DemandCurve {
        let mut series = self.series.clone();
        for i in interval.intersect(Interval::new(0, series.len())) {
            series.values_mut()[i] *= 1.0 - fraction.clamp(0.0, 1.0);
        }
        DemandCurve::new(series)
    }
}

/// Simulates demand over a multi-day [`Horizon`](crate::calendar::Horizon):
/// one curve per day, with weekday/weekend intensity factors applied and
/// the day index seeding per-day weather and jitter.
///
/// Returns `(demand, weather)` series pairs, one per day.
pub fn simulate_horizon(
    households: &[Household],
    model: &WeatherModel,
    horizon: &crate::calendar::Horizon,
    axis: &TimeAxis,
) -> Vec<(DemandCurve, Series)> {
    simulate_horizon_ref(PopulationRef::Objects(households), model, horizon, axis)
}

/// [`simulate_horizon`] over either population backend — byte-identical
/// across backends day by day.
pub fn simulate_horizon_ref(
    population: PopulationRef<'_>,
    model: &WeatherModel,
    horizon: &crate::calendar::Horizon,
    axis: &TimeAxis,
) -> Vec<(DemandCurve, Series)> {
    horizon
        .days()
        .map(|day| {
            let weather = model.temperatures(axis, day.index);
            let base = aggregate_demand_ref(population, &weather, axis, day.index);
            let curve = DemandCurve::new(base.series().scale(day.day_type.intensity_factor()));
            (curve, weather)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::Horizon;
    use crate::population::PopulationBuilder;
    use crate::production::ProductionModel;
    use crate::time::TimeOfDay;
    use crate::units::Kilowatts;
    use crate::weather::Season;

    fn curve() -> DemandCurve {
        let axis = TimeAxis::quarter_hourly();
        let homes = PopulationBuilder::new().households(100).build(7);
        aggregate_demand_for_model(&homes, &WeatherModel::winter(), &axis, 7)
    }

    #[test]
    fn aggregate_is_sum_of_households() {
        let axis = TimeAxis::hourly();
        let homes = PopulationBuilder::new().households(5).build(1);
        let weather = WeatherModel::winter().temperatures(&axis, 1);
        let curve = aggregate_demand(&homes, &weather, &axis, 1);
        let mean = weather.mean();
        let by_hand: f64 = homes
            .iter()
            .map(|h| h.demand_profile(&axis, mean, 1).sum())
            .sum();
        assert!((curve.total().value() - by_hand).abs() < 1e-9);
    }

    #[test]
    fn peak_is_in_the_evening() {
        let c = curve();
        let peak = c.peak_interval(8); // 2 hours
        let start = c.axis().start_of(peak.start());
        assert!(
            (16..=20).contains(&start.hour()),
            "peak starts at {start}, expected evening (Figure 1 shape)"
        );
    }

    #[test]
    fn peak_window_is_maximal() {
        let c = curve();
        let peak = c.peak_interval(8);
        let peak_energy = c.energy_over(peak);
        for start in 0..(c.len() - 8) {
            let window = c.energy_over(Interval::new(start, start + 8));
            assert!(window <= peak_energy + KilowattHours(1e-9));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_peak_panics() {
        let _ = curve().peak_interval(0);
    }

    #[test]
    fn expensive_band_appears_when_capacity_below_peak() {
        let c = curve();
        // Set normal capacity just below the peak slot demand.
        let axis = c.axis();
        let peak_kwh_per_slot = c.series().max();
        let cap = Kilowatts(peak_kwh_per_slot / axis.slot_hours() * 0.8);
        let production = ProductionModel::two_tier(cap, Kilowatts(cap.value() * 2.0));
        assert!(!c.slots_above_normal(&production).is_empty());
        assert!(c.energy_above_normal(&production).value() > 0.0);
    }

    #[test]
    fn no_expensive_band_with_ample_capacity() {
        let c = curve();
        let production = ProductionModel::two_tier(Kilowatts(1e9), Kilowatts(2e9));
        assert!(c.slots_above_normal(&production).is_empty());
        assert_eq!(c.energy_above_normal(&production), KilowattHours::ZERO);
    }

    #[test]
    fn reduction_lowers_interval_energy_only() {
        let c = curve();
        let axis = c.axis();
        let evening = axis.between(TimeOfDay::hm(18, 0).unwrap(), TimeOfDay::hm(20, 0).unwrap());
        let reduced = c.with_reduction(evening, 0.3);
        assert!(reduced.energy_over(evening) < c.energy_over(evening));
        let morning = axis.between(TimeOfDay::hm(6, 0).unwrap(), TimeOfDay::hm(8, 0).unwrap());
        assert_eq!(reduced.energy_over(morning), c.energy_over(morning));
    }

    #[test]
    fn reduction_clamps_fraction() {
        let c = curve();
        let whole = c.axis().whole_day();
        let zeroed = c.with_reduction(whole, 2.0);
        assert_eq!(zeroed.total(), KilowattHours::ZERO);
    }

    #[test]
    fn horizon_simulation_produces_one_curve_per_day() {
        let axis = TimeAxis::hourly();
        let homes = PopulationBuilder::new().households(20).build(5);
        let horizon = Horizon::new(7, 0, Season::Winter);
        let days = simulate_horizon(&homes, &WeatherModel::winter(), &horizon, &axis);
        assert_eq!(days.len(), 7);
        for (curve, weather) in &days {
            assert_eq!(curve.len(), 24);
            assert_eq!(weather.len(), 24);
            assert!(curve.total().value() > 0.0);
        }
        // Weekend days (indices 5, 6 from a Monday start) carry the
        // weekend intensity factor versus the same-seed weekday baseline.
        let weekday_equivalent =
            aggregate_demand_for_model(&homes, &WeatherModel::winter(), &axis, 5);
        assert!(days[5].0.total() > weekday_equivalent.total());
    }

    #[test]
    fn horizon_simulation_is_deterministic() {
        let axis = TimeAxis::hourly();
        let homes = PopulationBuilder::new().households(10).build(1);
        let horizon = Horizon::new(3, 2, Season::Autumn);
        let a = simulate_horizon(&homes, &WeatherModel::winter(), &horizon, &axis);
        let b = simulate_horizon(&homes, &WeatherModel::winter(), &horizon, &axis);
        assert_eq!(a, b);
    }
}
