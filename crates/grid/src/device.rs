//! Household devices and their consumption behaviour.
//!
//! Section 2 of the paper notes that consumers "all have devices that
//! consume electricity to various degrees" and that consumer models are
//! "partially defined by the type of equipment they use within their homes".
//! Each device contributes a time-of-day load shape; part of that load is
//! *flexible* (sheddable or deferrable), which is what a Resource Consumer
//! Agent can offer as saving potential during a cut-down interval.

use crate::series::Series;
use crate::time::{Interval, TimeAxis};
use crate::units::{Fraction, KilowattHours, Kilowatts};
use serde::{Deserialize, Serialize};

/// Categories of domestic electrical equipment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Electric space heating — temperature sensitive, highly flexible.
    SpaceHeating,
    /// Hot-water boiler — storage makes it deferrable.
    WaterHeater,
    /// Refrigerator/freezer — constant base load, briefly deferrable.
    Refrigeration,
    /// Lighting — evening-peaked, barely flexible.
    Lighting,
    /// Stove and oven — sharp dinner peak, inflexible (comfort critical).
    Cooking,
    /// Washing machine, dryer, dishwasher — fully deferrable.
    Laundry,
    /// TV and electronics — evening use, inflexible.
    Entertainment,
    /// Everything else (standby, pumps, ...).
    Other,
}

impl DeviceKind {
    /// All device kinds.
    pub fn all() -> [DeviceKind; 8] {
        [
            DeviceKind::SpaceHeating,
            DeviceKind::WaterHeater,
            DeviceKind::Refrigeration,
            DeviceKind::Lighting,
            DeviceKind::Cooking,
            DeviceKind::Laundry,
            DeviceKind::Entertainment,
            DeviceKind::Other,
        ]
    }

    /// Typical rated power for the kind.
    pub fn typical_power(self) -> Kilowatts {
        match self {
            DeviceKind::SpaceHeating => Kilowatts(3.0),
            DeviceKind::WaterHeater => Kilowatts(2.0),
            DeviceKind::Refrigeration => Kilowatts(0.15),
            DeviceKind::Lighting => Kilowatts(0.4),
            DeviceKind::Cooking => Kilowatts(2.5),
            DeviceKind::Laundry => Kilowatts(2.0),
            DeviceKind::Entertainment => Kilowatts(0.3),
            DeviceKind::Other => Kilowatts(0.2),
        }
    }

    /// Fraction of the kind's load that can be shed or deferred during a
    /// cut-down interval without unacceptable discomfort.
    pub fn typical_flexibility(self) -> Fraction {
        let f = match self {
            DeviceKind::SpaceHeating => 0.6,
            DeviceKind::WaterHeater => 0.8,
            DeviceKind::Refrigeration => 0.3,
            DeviceKind::Lighting => 0.1,
            DeviceKind::Cooking => 0.05,
            DeviceKind::Laundry => 1.0,
            DeviceKind::Entertainment => 0.05,
            DeviceKind::Other => 0.2,
        };
        Fraction::clamped(f)
    }

    /// True if the load rises when outdoor temperature falls.
    pub fn is_temperature_sensitive(self) -> bool {
        matches!(self, DeviceKind::SpaceHeating | DeviceKind::WaterHeater)
    }

    /// Fills `shape` with the duty cycle evaluated at each slot midpoint
    /// of a day discretised into `shape.len()` slots — the same
    /// evaluation grid as [`Series::from_fn`]. The shape depends only on
    /// the kind and the resolution, never on weather or household, so
    /// hot paths compute it once per kind and reuse it all day (see
    /// [`crate::household::DemandScratch`]).
    pub fn duty_shape_into(self, shape: &mut [f64]) {
        let n = shape.len();
        for (i, slot) in shape.iter_mut().enumerate() {
            *slot = self.duty_cycle((i as f64 + 0.5) / n as f64);
        }
    }

    /// Normalised time-of-day duty-cycle shape, evaluated at fractional day
    /// position `t ∈ [0, 1)`. Values in `[0, 1]`, representing the fraction
    /// of rated power drawn on an average day.
    pub fn duty_cycle(self, t: f64) -> f64 {
        // Helper: smooth bump centred at `c` (fraction of day) with width `w`.
        fn bump(t: f64, c: f64, w: f64) -> f64 {
            // Wrap-around distance on the daily circle.
            let mut d = (t - c).abs();
            if d > 0.5 {
                d = 1.0 - d;
            }
            (-0.5 * (d / w).powi(2)).exp()
        }
        match self {
            // Heating runs all day, dips at night (setback), rises morning
            // and evening when people are home.
            DeviceKind::SpaceHeating => {
                0.35 + 0.25 * bump(t, 7.5 / 24.0, 1.5 / 24.0)
                    + 0.40 * bump(t, 19.0 / 24.0, 2.5 / 24.0)
            }
            // Boiler reheats after morning showers and evening use.
            DeviceKind::WaterHeater => {
                0.10 + 0.55 * bump(t, 7.0 / 24.0, 1.0 / 24.0)
                    + 0.45 * bump(t, 21.0 / 24.0, 1.5 / 24.0)
            }
            DeviceKind::Refrigeration => 1.0,
            DeviceKind::Lighting => {
                0.05 + 0.30 * bump(t, 7.0 / 24.0, 1.0 / 24.0)
                    + 0.85 * bump(t, 19.5 / 24.0, 2.0 / 24.0)
            }
            DeviceKind::Cooking => {
                0.35 * bump(t, 12.0 / 24.0, 0.7 / 24.0) + 0.95 * bump(t, 18.0 / 24.0, 0.8 / 24.0)
            }
            DeviceKind::Laundry => {
                0.25 * bump(t, 10.0 / 24.0, 1.5 / 24.0) + 0.45 * bump(t, 18.5 / 24.0, 1.5 / 24.0)
            }
            DeviceKind::Entertainment => 0.10 + 0.75 * bump(t, 20.0 / 24.0, 1.8 / 24.0),
            DeviceKind::Other => 0.5,
        }
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DeviceKind::SpaceHeating => "space heating",
            DeviceKind::WaterHeater => "water heater",
            DeviceKind::Refrigeration => "refrigeration",
            DeviceKind::Lighting => "lighting",
            DeviceKind::Cooking => "cooking",
            DeviceKind::Laundry => "laundry",
            DeviceKind::Entertainment => "entertainment",
            DeviceKind::Other => "other",
        };
        f.write_str(name)
    }
}

/// A concrete device instance in a household.
///
/// # Example
///
/// ```
/// use powergrid::device::{Device, DeviceKind};
/// use powergrid::time::TimeAxis;
///
/// let heater = Device::typical(DeviceKind::SpaceHeating);
/// let axis = TimeAxis::hourly();
/// let load = heater.load_profile(&axis, -5.0, 1.0);
/// assert!(load.total().value() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    kind: DeviceKind,
    rated_power: Kilowatts,
    flexibility: Fraction,
}

impl Device {
    /// Creates a device with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `rated_power` is negative or non-finite.
    pub fn new(kind: DeviceKind, rated_power: Kilowatts, flexibility: Fraction) -> Device {
        assert!(
            rated_power.value() >= 0.0 && rated_power.is_finite(),
            "rated power must be a non-negative finite number, got {rated_power}"
        );
        Device {
            kind,
            rated_power,
            flexibility,
        }
    }

    /// Creates a device with the kind's typical power and flexibility.
    pub fn typical(kind: DeviceKind) -> Device {
        Device::new(kind, kind.typical_power(), kind.typical_flexibility())
    }

    /// The device category.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Rated (nameplate) power.
    pub fn rated_power(&self) -> Kilowatts {
        self.rated_power
    }

    /// Sheddable fraction of the device's load.
    pub fn flexibility(&self) -> Fraction {
        self.flexibility
    }

    /// The device's load (kWh per slot) for a day with mean outdoor
    /// temperature `mean_temp` °C; `intensity` scales overall usage
    /// (occupancy, habits).
    pub fn load_profile(&self, axis: &TimeAxis, mean_temp: f64, intensity: f64) -> Series {
        let mut values = vec![0.0; axis.slots_per_day()];
        self.load_profile_into(&mut values, axis, mean_temp, intensity);
        Series::from_values(*axis, values)
    }

    /// Writes the device's load (kWh per slot) into a caller-owned
    /// buffer — the allocation-free core of [`Device::load_profile`],
    /// byte-identical to it. This is the innermost loop of demand
    /// simulation (one call per device per household per day), so fleet
    /// runners reuse one scratch buffer across all of them.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from `axis.slots_per_day()`.
    pub fn load_profile_into(
        &self,
        out: &mut [f64],
        axis: &TimeAxis,
        mean_temp: f64,
        intensity: f64,
    ) {
        let n = axis.slots_per_day();
        assert_eq!(
            out.len(),
            n,
            "load buffer of {} slots does not match axis with {} slots",
            out.len(),
            n
        );
        let temp_factor = if self.kind.is_temperature_sensitive() {
            // Heating demand grows roughly linearly below a 16 °C balance
            // point; ~4.5% extra load per degree below it.
            1.0f64.max(1.0 + 0.045 * (16.0 - mean_temp))
        } else {
            1.0
        };
        let power = self.rated_power.value() * intensity * temp_factor;
        let slot_hours = axis.slot_hours();
        for (i, slot) in out.iter_mut().enumerate() {
            // Same slot-midpoint evaluation as `Series::from_fn`.
            let t = (i as f64 + 0.5) / n as f64;
            *slot = power * self.kind.duty_cycle(t) * slot_hours;
        }
    }

    /// [`Device::load_profile_into`] with the kind's duty shape already
    /// evaluated (by [`DeviceKind::duty_shape_into`] at the same
    /// resolution as `out`) — byte-identical, but the transcendental
    /// duty-cycle math is hoisted out of the per-household loop. This is
    /// what makes the scratch-reusing demand path fast: the shape is
    /// computed once per kind, then every household's load is a pure
    /// scale of it.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` or `shape.len()` differ from
    /// `axis.slots_per_day()`.
    pub fn load_profile_from_shape(
        &self,
        out: &mut [f64],
        shape: &[f64],
        axis: &TimeAxis,
        mean_temp: f64,
        intensity: f64,
    ) {
        let n = axis.slots_per_day();
        assert_eq!(
            out.len(),
            n,
            "load buffer of {} slots does not match axis with {n} slots",
            out.len()
        );
        assert_eq!(
            shape.len(),
            n,
            "duty shape of {} slots does not match axis with {n} slots",
            shape.len()
        );
        let temp_factor = if self.kind.is_temperature_sensitive() {
            1.0f64.max(1.0 + 0.045 * (16.0 - mean_temp))
        } else {
            1.0
        };
        let power = self.rated_power.value() * intensity * temp_factor;
        let slot_hours = axis.slot_hours();
        for (slot, &duty) in out.iter_mut().zip(shape) {
            *slot = power * duty * slot_hours;
        }
    }

    /// Energy this device could save over `interval` on a day with the
    /// given load profile: flexibility × its energy during the interval.
    pub fn saving_potential(&self, load: &Series, interval: Interval) -> KilowattHours {
        self.saving_potential_over(load.values(), interval)
    }

    /// [`Device::saving_potential`] on a raw per-slot buffer (as filled
    /// by [`Device::load_profile_into`]); the interval is clipped to the
    /// buffer length.
    pub fn saving_potential_over(&self, load: &[f64], interval: Interval) -> KilowattHours {
        let clipped = interval.intersect(Interval::new(0, load.len()));
        self.flexibility * KilowattHours(clipped.iter().map(|i| load[i]).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeOfDay;

    #[test]
    fn typical_devices_are_constructible() {
        for kind in DeviceKind::all() {
            let d = Device::typical(kind);
            assert_eq!(d.kind(), kind);
            assert!(d.rated_power().value() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_panics() {
        let _ = Device::new(DeviceKind::Other, Kilowatts(-1.0), Fraction::ZERO);
    }

    #[test]
    fn duty_cycles_are_bounded() {
        for kind in DeviceKind::all() {
            for i in 0..96 {
                let t = i as f64 / 96.0;
                let d = kind.duty_cycle(t);
                assert!((0.0..=1.2).contains(&d), "{kind} duty {d} at {t}");
            }
        }
    }

    #[test]
    fn cooking_peaks_at_dinner() {
        let axis = TimeAxis::quarter_hourly();
        let stove = Device::typical(DeviceKind::Cooking);
        let load = stove.load_profile(&axis, 0.0, 1.0);
        let peak_slot = load.argmax();
        let dinner = axis.slot_of(TimeOfDay::hm(18, 0).unwrap());
        assert!(
            (peak_slot as i64 - dinner as i64).abs() <= 4,
            "peak at slot {peak_slot}"
        );
    }

    #[test]
    fn heating_increases_when_colder() {
        let axis = TimeAxis::hourly();
        let heater = Device::typical(DeviceKind::SpaceHeating);
        let mild = heater.load_profile(&axis, 10.0, 1.0).total();
        let cold = heater.load_profile(&axis, -10.0, 1.0).total();
        assert!(cold > mild);
    }

    #[test]
    fn non_sensitive_device_ignores_temperature() {
        let axis = TimeAxis::hourly();
        let tv = Device::typical(DeviceKind::Entertainment);
        let a = tv.load_profile(&axis, 10.0, 1.0).total();
        let b = tv.load_profile(&axis, -10.0, 1.0).total();
        assert!((a.value() - b.value()).abs() < 1e-12);
    }

    #[test]
    fn intensity_scales_linearly() {
        let axis = TimeAxis::hourly();
        let lamp = Device::typical(DeviceKind::Lighting);
        let one = lamp.load_profile(&axis, 5.0, 1.0).total();
        let two = lamp.load_profile(&axis, 5.0, 2.0).total();
        assert!((two.value() - 2.0 * one.value()).abs() < 1e-9);
    }

    #[test]
    fn saving_potential_respects_flexibility() {
        let axis = TimeAxis::hourly();
        let rigid = Device::new(DeviceKind::Cooking, Kilowatts(2.0), Fraction::ZERO);
        let load = rigid.load_profile(&axis, 0.0, 1.0);
        let evening = Interval::new(17, 21);
        assert_eq!(rigid.saving_potential(&load, evening), KilowattHours::ZERO);

        let flexible = Device::new(DeviceKind::Laundry, Kilowatts(2.0), Fraction::ONE);
        let load2 = flexible.load_profile(&axis, 0.0, 1.0);
        let potential = flexible.saving_potential(&load2, evening);
        assert_eq!(potential, load2.energy_over(evening));
    }

    #[test]
    fn load_profile_into_is_byte_identical_to_allocating() {
        let axis = TimeAxis::quarter_hourly();
        for kind in DeviceKind::all() {
            let d = Device::typical(kind);
            let series = d.load_profile(&axis, -7.0, 1.3);
            let mut buf = vec![f64::NAN; axis.slots_per_day()];
            d.load_profile_into(&mut buf, &axis, -7.0, 1.3);
            assert_eq!(series.values(), &buf[..], "{kind}");
            let iv = Interval::new(68, 84);
            assert_eq!(
                d.saving_potential(&series, iv),
                d.saving_potential_over(&buf, iv),
                "{kind}"
            );
        }
    }

    #[test]
    fn load_profile_from_shape_is_byte_identical() {
        let axis = TimeAxis::quarter_hourly();
        let n = axis.slots_per_day();
        for kind in DeviceKind::all() {
            let d = Device::typical(kind);
            let mut shape = vec![0.0; n];
            kind.duty_shape_into(&mut shape);
            let mut direct = vec![0.0; n];
            d.load_profile_into(&mut direct, &axis, -7.0, 1.3);
            let mut via_shape = vec![f64::NAN; n];
            d.load_profile_from_shape(&mut via_shape, &shape, &axis, -7.0, 1.3);
            assert_eq!(direct, via_shape, "{kind}");
        }
    }

    #[test]
    #[should_panic(expected = "duty shape of 10 slots")]
    fn load_profile_from_shape_checks_shape_length() {
        let axis = TimeAxis::hourly();
        let mut out = vec![0.0; 24];
        let shape = vec![0.0; 10];
        Device::typical(DeviceKind::Other)
            .load_profile_from_shape(&mut out, &shape, &axis, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "does not match axis")]
    fn load_profile_into_checks_buffer_length() {
        let mut buf = vec![0.0; 10];
        Device::typical(DeviceKind::Lighting).load_profile_into(
            &mut buf,
            &TimeAxis::hourly(),
            0.0,
            1.0,
        );
    }

    #[test]
    fn fridge_is_flat() {
        let axis = TimeAxis::hourly();
        let fridge = Device::typical(DeviceKind::Refrigeration);
        let load = fridge.load_profile(&axis, 5.0, 1.0);
        assert!((load.max() - load.min()).abs() < 1e-12);
    }
}
