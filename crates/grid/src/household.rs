//! Households: collections of devices with occupancy and contract data.
//!
//! A household is the physical counterpart of one Customer Agent. Its
//! `allowed_use` is the contracted consumption that cut-down fractions in
//! the paper's formulae refer to (`(1 - cutdown(c)) * allowed_use(c)`).

use crate::device::{Device, DeviceKind};
use crate::series::Series;
use crate::time::{Interval, TimeAxis};
use crate::units::{Fraction, KilowattHours};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// Opaque identifier of a household / its Customer Agent.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct HouseholdId(pub u64);

impl fmt::Display for HouseholdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "household-{}", self.0)
    }
}

/// Reusable scratch buffers for the allocation-free demand hot path.
///
/// Simulating one day of one household allocates nothing once a scratch
/// lives outside the loop: [`Household::demand_profile_with`] and
/// [`Household::interval_flexibility_with`] write into these buffers
/// instead of building a fresh [`Series`] per device per household per
/// day. Campaign day loops and fleet runners keep one scratch per
/// worker and reuse it across households, peaks and days.
///
/// The buffers resize lazily, so one scratch can serve axes of
/// different resolutions.
#[derive(Debug, Clone, Default)]
pub struct DemandScratch {
    /// Accumulated household demand (kWh per slot).
    pub(crate) total: Vec<f64>,
    /// The single device profile being accumulated.
    pub(crate) device: Vec<f64>,
    /// Duty-cycle shapes per device kind at the current resolution —
    /// the transcendental part of a load profile, which depends only on
    /// `(kind, resolution)` and is therefore shared across households,
    /// days and peaks. Populated lazily; cleared when the resolution
    /// changes.
    pub(crate) shapes: Vec<(DeviceKind, Vec<f64>)>,
}

impl DemandScratch {
    /// Scratch buffers sized for `axis` (they grow on demand if later
    /// used with a finer axis).
    pub fn new(axis: &TimeAxis) -> DemandScratch {
        let n = axis.slots_per_day();
        DemandScratch {
            total: vec![0.0; n],
            device: vec![0.0; n],
            shapes: Vec::new(),
        }
    }

    /// The most recently computed household demand profile (kWh per
    /// slot), as left behind by [`Household::demand_profile_with`].
    pub fn total(&self) -> &[f64] {
        &self.total
    }

    pub(crate) fn ensure(&mut self, n: usize) {
        if self.total.len() != n {
            self.total.resize(n, 0.0);
            self.shapes.clear();
        }
        if self.device.len() != n {
            self.device.resize(n, 0.0);
        }
    }
}

/// The cached duty shape for `kind` at resolution `n`, computing it on
/// first use. Free-standing so callers can hold disjoint borrows of the
/// scratch's other buffers.
pub(crate) fn shape_of(
    shapes: &mut Vec<(DeviceKind, Vec<f64>)>,
    kind: DeviceKind,
    n: usize,
) -> &[f64] {
    if let Some(pos) = shapes.iter().position(|(k, _)| *k == kind) {
        return &shapes[pos].1;
    }
    let mut shape = vec![0.0; n];
    kind.duty_shape_into(&mut shape);
    shapes.push((kind, shape));
    &shapes.last().expect("just pushed").1
}

/// The shared standard equipment list for a household of `occupants`:
/// the 7-device base set, plus laundry for multi-person homes. Built
/// once per process and cloned per household, so population
/// construction does not re-derive every `Device::typical` from kind
/// constants a million times over. Device-list *order* is load-bearing:
/// the per-household jitter stream draws one value per device in this
/// order, so it is pinned by the byte-identity suites.
pub(crate) fn standard_devices(occupants: u32) -> &'static [Device] {
    static TEMPLATES: OnceLock<[Vec<Device>; 2]> = OnceLock::new();
    let [single, multi] = TEMPLATES.get_or_init(|| {
        let base = vec![
            Device::typical(DeviceKind::SpaceHeating),
            Device::typical(DeviceKind::WaterHeater),
            Device::typical(DeviceKind::Refrigeration),
            Device::typical(DeviceKind::Lighting),
            Device::typical(DeviceKind::Cooking),
            Device::typical(DeviceKind::Entertainment),
            Device::typical(DeviceKind::Other),
        ];
        let mut with_laundry = base.clone();
        with_laundry.push(Device::typical(DeviceKind::Laundry));
        [base, with_laundry]
    });
    if occupants >= 2 {
        multi
    } else {
        single
    }
}

/// A domestic consumer: occupants, equipment and contract.
///
/// # Example
///
/// ```
/// use powergrid::household::Household;
/// use powergrid::time::TimeAxis;
///
/// let home = Household::standard(powergrid::household::HouseholdId(1), 3);
/// let axis = TimeAxis::hourly();
/// let demand = home.demand_profile(&axis, -4.0, 7);
/// assert!(demand.total().value() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Household {
    id: HouseholdId,
    occupants: u32,
    devices: Vec<Device>,
    /// Contracted daily consumption; cut-downs are fractions of this.
    allowed_use: KilowattHours,
    /// Multiplier for overall usage intensity (habits).
    intensity: f64,
}

impl Household {
    /// Creates a household with an explicit device list.
    ///
    /// # Panics
    ///
    /// Panics if `occupants` is zero or `allowed_use` is negative.
    pub fn new(
        id: HouseholdId,
        occupants: u32,
        devices: Vec<Device>,
        allowed_use: KilowattHours,
        intensity: f64,
    ) -> Household {
        assert!(occupants > 0, "a household has at least one occupant");
        assert!(
            allowed_use.value() >= 0.0,
            "allowed use must be non-negative, got {allowed_use}"
        );
        assert!(
            intensity > 0.0,
            "intensity must be positive, got {intensity}"
        );
        Household {
            id,
            occupants,
            devices,
            allowed_use,
            intensity,
        }
    }

    /// Creates a household with the standard equipment set for its size.
    ///
    /// One-person households own fewer and smaller devices than larger
    /// households — Section 3.2.1 points out exactly this disparity as the
    /// weakness of the take-it-or-leave-it offer method.
    pub fn standard(id: HouseholdId, occupants: u32) -> Household {
        let occupants = occupants.max(1);
        let devices = standard_devices(occupants).to_vec();
        let intensity = 0.6 + 0.2 * f64::from(occupants);
        // Contracted allowance: generous margin above typical winter use.
        let allowed = KilowattHours(18.0 + 9.0 * f64::from(occupants));
        Household::new(id, occupants, devices, allowed, intensity)
    }

    /// The household's identifier.
    pub fn id(&self) -> HouseholdId {
        self.id
    }

    /// Number of occupants.
    pub fn occupants(&self) -> u32 {
        self.occupants
    }

    /// The installed devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Contracted daily consumption allowance.
    pub fn allowed_use(&self) -> KilowattHours {
        self.allowed_use
    }

    /// Usage-intensity multiplier.
    pub fn intensity(&self) -> f64 {
        self.intensity
    }

    /// The household's demand (kWh per slot) for a day with mean outdoor
    /// temperature `mean_temp` °C. Seeded per-household jitter makes
    /// different households differ even with identical equipment.
    ///
    /// A thin allocating wrapper over
    /// [`Household::demand_profile_into`]; callers in a loop should keep
    /// a [`DemandScratch`] and use [`Household::demand_profile_with`]
    /// instead (byte-identical output, no allocation per household).
    pub fn demand_profile(&self, axis: &TimeAxis, mean_temp: f64, seed: u64) -> Series {
        let mut out = vec![0.0; axis.slots_per_day()];
        let mut device = vec![0.0; axis.slots_per_day()];
        self.demand_profile_into(axis, mean_temp, seed, &mut out, &mut device);
        Series::from_values(*axis, out)
    }

    /// Writes the household's demand profile into `out`, using `device`
    /// as per-device scratch — the allocation-free core of
    /// [`Household::demand_profile`], byte-identical to it (same jitter
    /// stream, same per-slot accumulation order).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` or `device.len()` differ from
    /// `axis.slots_per_day()` (via [`Device::load_profile_into`]).
    pub fn demand_profile_into(
        &self,
        axis: &TimeAxis,
        mean_temp: f64,
        seed: u64,
        out: &mut [f64],
        device: &mut [f64],
    ) {
        assert_eq!(
            out.len(),
            axis.slots_per_day(),
            "demand buffer of {} slots does not match axis with {} slots",
            out.len(),
            axis.slots_per_day()
        );
        out.fill(0.0);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(self.id.0));
        for dev in &self.devices {
            let jitter = rng.gen_range(0.85..1.15);
            dev.load_profile_into(device, axis, mean_temp, self.intensity * jitter);
            for (slot, load) in out.iter_mut().zip(device.iter()) {
                *slot += load;
            }
        }
    }

    /// [`Household::demand_profile_into`] against a reusable
    /// [`DemandScratch`]; returns the computed profile (kWh per slot),
    /// which also stays readable as [`DemandScratch::total`] until the
    /// scratch is next written.
    ///
    /// Byte-identical to [`Household::demand_profile`], but on top of
    /// allocating nothing it reuses the scratch's cached per-kind duty
    /// shapes, hoisting the transcendental time-of-day math out of the
    /// per-household loop entirely — the measurable hot-path win for
    /// fleet-scale simulation.
    pub fn demand_profile_with<'s>(
        &self,
        axis: &TimeAxis,
        mean_temp: f64,
        seed: u64,
        scratch: &'s mut DemandScratch,
    ) -> &'s [f64] {
        let n = axis.slots_per_day();
        scratch.ensure(n);
        let DemandScratch {
            total,
            device,
            shapes,
        } = scratch;
        total.fill(0.0);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(self.id.0));
        for dev in &self.devices {
            let jitter = rng.gen_range(0.85..1.15);
            let shape = shape_of(shapes, dev.kind(), n);
            dev.load_profile_from_shape(device, shape, axis, mean_temp, self.intensity * jitter);
            for (slot, load) in total.iter_mut().zip(device.iter()) {
                *slot += load;
            }
        }
        &scratch.total
    }

    /// Energy the household could shed over `interval` given its devices'
    /// flexibility — the aggregate answer its Resource Consumer Agents give
    /// to "how much can be saved in this time interval?" (Section 3.2.3).
    pub fn saving_potential(
        &self,
        axis: &TimeAxis,
        mean_temp: f64,
        seed: u64,
        interval: Interval,
    ) -> KilowattHours {
        self.interval_flexibility(axis, mean_temp, seed, interval).1
    }

    /// Interval demand and saving potential in one pass over the
    /// devices, returning `(usage, potential)`.
    ///
    /// Byte-identical to calling [`Household::demand_profile`] (then
    /// [`Series::energy_over`]) and [`Household::saving_potential`]
    /// separately — same jitter stream, same accumulation order — but
    /// each device's load profile is generated once instead of twice.
    /// This is the hot path of scenario derivation: one call per
    /// household per detected peak.
    pub fn interval_flexibility(
        &self,
        axis: &TimeAxis,
        mean_temp: f64,
        seed: u64,
        interval: Interval,
    ) -> (KilowattHours, KilowattHours) {
        let mut scratch = DemandScratch::new(axis);
        self.interval_flexibility_with(axis, mean_temp, seed, interval, &mut scratch)
    }

    /// [`Household::interval_flexibility`] against a reusable
    /// [`DemandScratch`] — the allocation-free form scenario derivation
    /// runs once per household per detected peak. Byte-identical to the
    /// allocating wrapper.
    pub fn interval_flexibility_with(
        &self,
        axis: &TimeAxis,
        mean_temp: f64,
        seed: u64,
        interval: Interval,
        scratch: &mut DemandScratch,
    ) -> (KilowattHours, KilowattHours) {
        let n = axis.slots_per_day();
        scratch.ensure(n);
        let DemandScratch {
            total,
            device,
            shapes,
        } = scratch;
        total.fill(0.0);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(self.id.0));
        let mut potential = KilowattHours::ZERO;
        for dev in &self.devices {
            let jitter = rng.gen_range(0.85..1.15);
            let shape = shape_of(shapes, dev.kind(), n);
            dev.load_profile_from_shape(device, shape, axis, mean_temp, self.intensity * jitter);
            potential += dev.saving_potential_over(device, interval);
            for (slot, load) in total.iter_mut().zip(device.iter()) {
                *slot += load;
            }
        }
        let clipped = interval.intersect(Interval::new(0, n));
        let usage = KilowattHours(clipped.iter().map(|i| total[i]).sum());
        (usage, potential)
    }

    /// The largest cut-down fraction of interval usage the household can
    /// physically implement: saving potential / interval usage.
    pub fn max_cutdown(
        &self,
        axis: &TimeAxis,
        mean_temp: f64,
        seed: u64,
        interval: Interval,
    ) -> Fraction {
        let (usage, potential) = self.interval_flexibility(axis, mean_temp, seed, interval);
        if usage.value() <= f64::EPSILON {
            return Fraction::ZERO;
        }
        Fraction::clamped(potential / usage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeOfDay;

    fn axis() -> TimeAxis {
        TimeAxis::quarter_hourly()
    }

    fn evening(axis: TimeAxis) -> Interval {
        axis.between(TimeOfDay::hm(17, 0).unwrap(), TimeOfDay::hm(21, 0).unwrap())
    }

    #[test]
    fn standard_household_scales_with_occupants() {
        let one = Household::standard(HouseholdId(1), 1);
        let four = Household::standard(HouseholdId(1), 4);
        let a = one.demand_profile(&axis(), -4.0, 7).total();
        let b = four.demand_profile(&axis(), -4.0, 7).total();
        assert!(
            b > a,
            "four-person home ({b}) should out-consume single ({a})"
        );
        assert!(four.allowed_use() > one.allowed_use());
    }

    #[test]
    #[should_panic(expected = "at least one occupant")]
    fn zero_occupants_panics() {
        let _ = Household::new(HouseholdId(0), 0, vec![], KilowattHours(10.0), 1.0);
    }

    #[test]
    fn demand_is_deterministic_per_seed() {
        let h = Household::standard(HouseholdId(9), 3);
        assert_eq!(
            h.demand_profile(&axis(), -4.0, 7),
            h.demand_profile(&axis(), -4.0, 7)
        );
        assert_ne!(
            h.demand_profile(&axis(), -4.0, 7),
            h.demand_profile(&axis(), -4.0, 8)
        );
    }

    #[test]
    fn different_households_differ() {
        let a = Household::standard(HouseholdId(1), 3).demand_profile(&axis(), -4.0, 7);
        let b = Household::standard(HouseholdId(2), 3).demand_profile(&axis(), -4.0, 7);
        assert_ne!(a, b);
    }

    #[test]
    fn evening_peak_exists() {
        let h = Household::standard(HouseholdId(5), 3);
        let demand = h.demand_profile(&axis(), -4.0, 7);
        let peak_slot = demand.argmax();
        let t = axis().start_of(peak_slot);
        assert!(
            (17..=21).contains(&t.hour()),
            "household peak at {t}, expected early evening"
        );
    }

    #[test]
    fn saving_potential_positive_but_partial() {
        let h = Household::standard(HouseholdId(3), 3);
        let iv = evening(axis());
        let potential = h.saving_potential(&axis(), -4.0, 7, iv);
        let usage = h.demand_profile(&axis(), -4.0, 7).energy_over(iv);
        assert!(potential.value() > 0.0);
        assert!(potential < usage, "cannot shed more than is used");
    }

    #[test]
    fn max_cutdown_in_unit_range() {
        let h = Household::standard(HouseholdId(3), 2);
        let f = h.max_cutdown(&axis(), -4.0, 7, evening(axis()));
        assert!(f > Fraction::ZERO);
        assert!(f < Fraction::ONE);
    }

    #[test]
    fn interval_flexibility_matches_the_two_pass_computation() {
        let h = Household::standard(HouseholdId(7), 3);
        let iv = evening(axis());
        let (usage, potential) = h.interval_flexibility(&axis(), -4.0, 7, iv);
        assert_eq!(usage, h.demand_profile(&axis(), -4.0, 7).energy_over(iv));
        assert_eq!(potential, h.saving_potential(&axis(), -4.0, 7, iv));
    }

    #[test]
    fn scratch_paths_are_byte_identical_to_allocating_ones() {
        let h = Household::standard(HouseholdId(11), 4);
        let iv = evening(axis());
        let mut scratch = DemandScratch::new(&axis());
        // Reuse the same scratch across calls — later results must not
        // see earlier ones.
        for seed in [3u64, 7, 7, 12] {
            let series = h.demand_profile(&axis(), -4.0, seed);
            let profile = h.demand_profile_with(&axis(), -4.0, seed, &mut scratch);
            assert_eq!(series.values(), profile, "seed {seed}");
            assert_eq!(scratch.total(), series.values());
            let two_pass = h.interval_flexibility(&axis(), -4.0, seed, iv);
            let with = h.interval_flexibility_with(&axis(), -4.0, seed, iv, &mut scratch);
            assert_eq!(two_pass, with, "seed {seed}");
        }
    }

    #[test]
    fn scratch_resizes_across_axes() {
        let h = Household::standard(HouseholdId(2), 2);
        let mut scratch = DemandScratch::new(&TimeAxis::hourly());
        assert_eq!(
            h.demand_profile_with(&TimeAxis::hourly(), -4.0, 5, &mut scratch)
                .len(),
            24
        );
        let fine = h.demand_profile_with(&axis(), -4.0, 5, &mut scratch);
        assert_eq!(fine.len(), 96);
        assert_eq!(fine, h.demand_profile(&axis(), -4.0, 5).values());
    }

    #[test]
    fn empty_interval_has_no_potential() {
        let h = Household::standard(HouseholdId(3), 2);
        let f = h.max_cutdown(&axis(), -4.0, 7, Interval::new(10, 10));
        assert_eq!(f, Fraction::ZERO);
    }

    #[test]
    fn colder_day_increases_demand() {
        let h = Household::standard(HouseholdId(3), 3);
        let mild = h.demand_profile(&axis(), 5.0, 7).total();
        let cold = h.demand_profile(&axis(), -15.0, 7).total();
        assert!(cold > mild);
    }

    #[test]
    fn display_id() {
        assert_eq!(HouseholdId(42).to_string(), "household-42");
    }
}
