//! Electricity-grid domain substrate for the load-balancing multi-agent
//! system of Brazier et al. (ICDCS 1998).
//!
//! The paper's prototype was driven by real utility data (Sydkraft) that is
//! not available; this crate provides a synthetic but behaviourally faithful
//! replacement:
//!
//! * typed physical quantities ([`units`]),
//! * a discretised day ([`time`]) and time series over it ([`series`]),
//! * weather ([`weather`]) driving device-level household demand
//!   ([`device`], [`household`], [`population`]),
//! * aggregate demand curves with evening peaks ([`demand`]) against a
//!   two-tier production-cost model ([`production`]) — together these
//!   regenerate Figure 1 of the paper,
//! * statistical load predictors ([`prediction`]) and peak detection
//!   ([`peak`]) used by the Utility Agent,
//! * the lower/normal/higher price scheme ([`tariff`]) of Section 3.2.
//!
//! # Population backends
//!
//! Populations come in two interchangeable representations:
//!
//! * **Object backend** — `Vec<Household>`, each household owning its
//!   `Vec<Device>` ([`PopulationBuilder::build`]). The natural shape
//!   for small scenario work, per-household inspection, serde and
//!   hand-built test fixtures.
//! * **Slab backend** — [`slab::PopulationSlab`], the same fields as
//!   struct-of-arrays with batched kernels
//!   ([`slab::aggregate_demand_slab`] and friends) sweeping contiguous
//!   slices ([`PopulationBuilder::build_slab`]). Use it when the
//!   population is large (tens of thousands of households and up):
//!   construction allocates a dozen arrays instead of millions of tiny
//!   trees, demand synthesis runs several times faster, and
//!   [`slab::PopulationSlab::shards`] splits one city across fleet
//!   cells with zero copying.
//!
//! Both backends are **byte-identical** — same jitter streams, same
//! accumulation order, proptest-pinned — so campaigns, goldens and
//! archives never notice which one produced a season. APIs that accept
//! either take a [`slab::PopulationRef`].
//!
//! [`PopulationBuilder::build`]: population::PopulationBuilder::build
//! [`PopulationBuilder::build_slab`]: population::PopulationBuilder::build_slab
//!
//! # Example
//!
//! ```
//! use powergrid::prelude::*;
//!
//! let axis = TimeAxis::quarter_hourly();
//! let weather = WeatherModel::winter().temperatures(&axis, 7);
//! let population = PopulationBuilder::new().households(100).build(42);
//! let demand = aggregate_demand(&population, &weather, &axis, 42);
//! assert_eq!(demand.len(), axis.slots_per_day());
//! assert!(demand.total().0 > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod demand;
pub mod device;
pub mod household;
pub mod peak;
pub mod population;
pub mod prediction;
pub mod production;
pub mod series;
pub mod slab;
pub mod tariff;
pub mod time;
pub mod units;
pub mod weather;

/// Convenient glob-import of the most frequently used items.
pub mod prelude {
    pub use crate::calendar::{CalendarDay, DayType, Horizon};
    pub use crate::demand::{
        aggregate_demand, aggregate_demand_ref, simulate_horizon, simulate_horizon_ref, DemandCurve,
    };
    pub use crate::device::{Device, DeviceKind};
    pub use crate::household::{DemandScratch, Household, HouseholdId};
    pub use crate::peak::{Peak, PeakDetector};
    pub use crate::population::PopulationBuilder;
    pub use crate::prediction::{
        backtest, ExponentialSmoothing, HoltTrend, LoadPredictor, MovingAverage, SeasonalNaive,
        WeatherRegression,
    };
    pub use crate::production::ProductionModel;
    pub use crate::series::Series;
    pub use crate::slab::{
        aggregate_demand_slab, interval_flexibility_slab, saving_potential_slab, PopulationRef,
        PopulationSlab, SlabView,
    };
    pub use crate::tariff::Tariff;
    pub use crate::time::{Interval, TimeAxis, TimeOfDay};
    pub use crate::units::{Celsius, Fraction, KilowattHours, Kilowatts, Money, PricePerKwh};
    pub use crate::weather::{Season, WeatherModel};
}
