//! Peak detection and overuse computation.
//!
//! Section 5.1.2: the Utility Agent's decision to start a negotiation
//! "depends on level of predicted overuse: whether the predicted overuse is
//! high enough to warrant the effort involved". This module turns a
//! predicted demand curve and a production model into that decision input.

use crate::production::ProductionModel;
use crate::series::Series;
use crate::time::Interval;
use crate::units::KilowattHours;
use serde::{Deserialize, Serialize};

/// A detected demand peak: where it is and how much overuse it carries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Peak {
    /// Slots during which predicted demand exceeds normal capacity.
    pub interval: Interval,
    /// Predicted energy above normal capacity within the interval.
    pub predicted_overuse: KilowattHours,
    /// Normal-capacity energy over the interval ("normal_use" of §6).
    pub normal_use: KilowattHours,
}

impl Peak {
    /// Relative overuse `predicted_overuse / normal_use` — the `overuse`
    /// quantity in the paper's reward-update formula.
    pub fn overuse_fraction(&self) -> f64 {
        if self.normal_use.value() <= f64::EPSILON {
            0.0
        } else {
            self.predicted_overuse / self.normal_use
        }
    }
}

impl std::fmt::Display for Peak {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "peak {} overuse {} ({:.1}% of normal use {})",
            self.interval,
            self.predicted_overuse,
            100.0 * self.overuse_fraction(),
            self.normal_use
        )
    }
}

/// Detects peaks in predicted demand and judges whether they warrant a
/// negotiation.
///
/// # Example
///
/// ```
/// use powergrid::peak::PeakDetector;
/// use powergrid::production::ProductionModel;
/// use powergrid::series::Series;
/// use powergrid::time::TimeAxis;
/// use powergrid::units::Kilowatts;
///
/// let axis = TimeAxis::hourly();
/// let mut demand = Series::constant(axis, 80.0);
/// demand.values_mut()[18] = 130.0; // evening spike above 100 kW capacity
/// let production = ProductionModel::two_tier(Kilowatts(100.0), Kilowatts(200.0));
/// let detector = PeakDetector::new(0.05);
/// let peak = detector.detect(&demand, &production).expect("peak expected");
/// assert!(peak.interval.contains(18));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeakDetector {
    /// Minimum overuse fraction that makes negotiation worth the effort.
    threshold: f64,
}

impl PeakDetector {
    /// Creates a detector that reports peaks whose overuse fraction is at
    /// least `threshold` (e.g. `0.05` = 5 % above normal capacity).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or not finite.
    pub fn new(threshold: f64) -> PeakDetector {
        assert!(
            threshold >= 0.0 && threshold.is_finite(),
            "threshold must be ≥ 0"
        );
        PeakDetector { threshold }
    }

    /// The configured overuse threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Finds the largest-excess peak among [`PeakDetector::detect_all`]'s
    /// candidates (ties go to the earliest run).
    ///
    /// Returns `None` in a "stable situation" (§5.1.2): no slot exceeds
    /// capacity, or no peak is big enough to warrant negotiation. Note
    /// the threshold applies *per run*: a sharp spike above threshold is
    /// reported even when a milder, larger-excess run elsewhere in the
    /// day falls below it.
    pub fn detect(&self, predicted: &Series, production: &ProductionModel) -> Option<Peak> {
        self.detect_all(predicted, production)
            .into_iter()
            .fold(None, |best: Option<Peak>, p| match best {
                Some(b) if b.predicted_overuse >= p.predicted_overuse => Some(b),
                _ => Some(p),
            })
    }

    /// Finds *every* maximal contiguous run of slots where `predicted`
    /// exceeds normal capacity whose overuse fraction reaches the
    /// threshold, in time order.
    ///
    /// A day can carry more than one negotiable peak (a morning ramp and
    /// the evening spike); the campaign pipeline negotiates each one as
    /// its own [`Scenario`](https://docs.rs/loadbal-core) while
    /// [`PeakDetector::detect`] keeps the single-peak view of §5.1.2.
    pub fn detect_all(&self, predicted: &Series, production: &ProductionModel) -> Vec<Peak> {
        let cap = production
            .normal_capacity_per_slot(predicted.axis())
            .value();
        let values = predicted.values();
        let mut peaks = Vec::new();
        let mut i = 0;
        while i < values.len() {
            if values[i] > cap {
                let start = i;
                let mut excess = 0.0;
                while i < values.len() && values[i] > cap {
                    excess += values[i] - cap;
                    i += 1;
                }
                let interval = Interval::new(start, i);
                let peak = Peak {
                    interval,
                    predicted_overuse: KilowattHours(excess),
                    normal_use: KilowattHours(cap * interval.len() as f64),
                };
                if peak.overuse_fraction() >= self.threshold {
                    peaks.push(peak);
                }
            } else {
                i += 1;
            }
        }
        peaks
    }
}

impl Default for PeakDetector {
    /// A detector with a 5 % overuse threshold.
    fn default() -> Self {
        PeakDetector::new(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeAxis;
    use crate::units::Kilowatts;

    fn production() -> ProductionModel {
        ProductionModel::two_tier(Kilowatts(100.0), Kilowatts(200.0))
    }

    fn axis() -> TimeAxis {
        TimeAxis::hourly()
    }

    #[test]
    fn no_peak_in_stable_situation() {
        let demand = Series::constant(axis(), 80.0);
        assert!(PeakDetector::default()
            .detect(&demand, &production())
            .is_none());
    }

    #[test]
    fn detects_single_peak() {
        let mut demand = Series::constant(axis(), 80.0);
        for h in 17..21 {
            demand.values_mut()[h] = 130.0;
        }
        let peak = PeakDetector::default()
            .detect(&demand, &production())
            .unwrap();
        assert_eq!(peak.interval, Interval::new(17, 21));
        assert!((peak.predicted_overuse.value() - 120.0).abs() < 1e-9);
        assert!((peak.normal_use.value() - 400.0).abs() < 1e-9);
        assert!((peak.overuse_fraction() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn picks_largest_of_multiple_peaks() {
        let mut demand = Series::constant(axis(), 80.0);
        demand.values_mut()[8] = 110.0; // small morning bump: excess 10
        for h in 18..20 {
            demand.values_mut()[h] = 140.0; // evening: excess 80
        }
        let peak = PeakDetector::new(0.0)
            .detect(&demand, &production())
            .unwrap();
        assert_eq!(peak.interval, Interval::new(18, 20));
    }

    #[test]
    fn threshold_filters_small_peaks() {
        let mut demand = Series::constant(axis(), 80.0);
        demand.values_mut()[18] = 102.0; // 2 % overuse in that slot
        assert!(PeakDetector::new(0.05)
            .detect(&demand, &production())
            .is_none());
        assert!(PeakDetector::new(0.01)
            .detect(&demand, &production())
            .is_some());
    }

    #[test]
    fn detect_all_returns_every_peak_in_time_order() {
        let mut demand = Series::constant(axis(), 80.0);
        for h in 7..9 {
            demand.values_mut()[h] = 120.0; // morning ramp: excess 40
        }
        for h in 18..20 {
            demand.values_mut()[h] = 140.0; // evening: excess 80
        }
        let peaks = PeakDetector::new(0.0).detect_all(&demand, &production());
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].interval, Interval::new(7, 9));
        assert_eq!(peaks[1].interval, Interval::new(18, 20));
        // `detect` keeps the single-largest view of §5.1.2.
        let best = PeakDetector::new(0.0)
            .detect(&demand, &production())
            .unwrap();
        assert_eq!(best.interval, Interval::new(18, 20));
        // The threshold filters each run independently.
        let strict = PeakDetector::new(0.3).detect_all(&demand, &production());
        assert_eq!(strict.len(), 1);
        assert_eq!(strict[0].interval, Interval::new(18, 20));
    }

    #[test]
    fn equal_excess_ties_go_to_the_earliest_run() {
        let mut demand = Series::constant(axis(), 80.0);
        demand.values_mut()[8] = 130.0; // morning: excess 30
        demand.values_mut()[19] = 130.0; // evening: excess 30
        let peak = PeakDetector::new(0.0)
            .detect(&demand, &production())
            .unwrap();
        assert_eq!(peak.interval, Interval::new(8, 9));
    }

    #[test]
    fn slot_exactly_at_capacity_is_not_overuse() {
        // Detection is strict: `values[i] > cap`. A slot sitting exactly
        // on the capacity line is served by normal production and must
        // neither open a peak nor extend a neighbouring one.
        let mut demand = Series::constant(axis(), 80.0);
        demand.values_mut()[12] = 100.0; // exactly at capacity
        assert!(
            PeakDetector::new(0.0)
                .detect_all(&demand, &production())
                .is_empty(),
            "a slot at exactly the capacity line is not a peak"
        );
        // At-capacity slots split what would otherwise be one run.
        demand.values_mut()[11] = 120.0;
        demand.values_mut()[13] = 120.0;
        let peaks = PeakDetector::new(0.0).detect_all(&demand, &production());
        assert_eq!(peaks.len(), 2, "the at-capacity slot splits the run");
        assert_eq!(peaks[0].interval, Interval::new(11, 12));
        assert_eq!(peaks[1].interval, Interval::new(13, 14));
    }

    #[test]
    fn zero_threshold_reports_any_positive_excess() {
        let mut demand = Series::constant(axis(), 80.0);
        demand.values_mut()[6] = 100.0 + 1e-9; // barely above capacity
        let peaks = PeakDetector::new(0.0).detect_all(&demand, &production());
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].interval, Interval::new(6, 7));
        assert!(peaks[0].predicted_overuse.value() > 0.0);
        // The same excess vanishes under any positive threshold.
        assert!(PeakDetector::new(0.01)
            .detect_all(&demand, &production())
            .is_empty());
    }

    #[test]
    fn run_ending_at_the_last_slot_is_closed() {
        // A peak still rising at midnight must be closed at the day
        // boundary with its full excess, not dropped or truncated.
        let mut demand = Series::constant(axis(), 80.0);
        for h in 22..24 {
            demand.values_mut()[h] = 130.0;
        }
        let peaks = PeakDetector::new(0.0).detect_all(&demand, &production());
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].interval, Interval::new(22, 24));
        assert!((peaks[0].predicted_overuse.value() - 60.0).abs() < 1e-9);
        assert!((peaks[0].normal_use.value() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn paper_scenario_numbers() {
        // Figures 6–7: normal capacity 100, predicted usage 135 → overuse 35.
        let axis = TimeAxis::hourly();
        let mut demand = Series::constant(axis, 50.0);
        demand.values_mut()[18] = 135.0;
        let peak = PeakDetector::default()
            .detect(&demand, &production())
            .unwrap();
        assert!((peak.predicted_overuse.value() - 35.0).abs() < 1e-9);
        assert!((peak.overuse_fraction() - 0.35).abs() < 1e-9);
    }

    #[test]
    fn display_is_informative() {
        let peak = Peak {
            interval: Interval::new(18, 20),
            predicted_overuse: KilowattHours(35.0),
            normal_use: KilowattHours(100.0),
        };
        let s = peak.to_string();
        assert!(s.contains("35.0"));
        assert!(s.contains('%'));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn negative_threshold_panics() {
        let _ = PeakDetector::new(-0.1);
    }

    #[test]
    fn zero_normal_use_gives_zero_fraction() {
        let peak = Peak {
            interval: Interval::new(0, 0),
            predicted_overuse: KilowattHours::ZERO,
            normal_use: KilowattHours::ZERO,
        };
        assert_eq!(peak.overuse_fraction(), 0.0);
    }
}
