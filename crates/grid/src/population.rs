//! Generation of heterogeneous household populations.
//!
//! "Consumers are all individuals with their own characteristics and needs"
//! (Section 2) — populations mix household sizes and usage intensities so
//! that the negotiation methods face realistic heterogeneity.

use crate::household::{Household, HouseholdId};
use crate::slab::PopulationSlab;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Maps one uniform draw `pick ∈ [0, Σweights)` onto an occupant count
/// (bucket index + 1) by cumulative subtraction.
///
/// Float edge: the subtractions can accumulate enough rounding error
/// that `pick` ends up ≥ every remaining weight and the loop falls
/// through. The fallback is the **last positive-weight bucket** — the
/// one whose cumulative upper edge is the full total — never a
/// zero-weight bucket and never a silent `occupants = 1`.
fn pick_occupants(weights: &[f64; 5], mut pick: f64) -> u32 {
    for (k, &w) in weights.iter().enumerate() {
        if pick < w {
            return k as u32 + 1;
        }
        pick -= w;
    }
    let last = weights
        .iter()
        .rposition(|&w| w > 0.0)
        .expect("size_weights are validated non-negative and not all zero");
    last as u32 + 1
}

/// Builder for a synthetic population of households.
///
/// # Example
///
/// ```
/// use powergrid::population::PopulationBuilder;
///
/// let homes = PopulationBuilder::new().households(50).build(42);
/// assert_eq!(homes.len(), 50);
/// // Deterministic: same seed, same population.
/// assert_eq!(homes, PopulationBuilder::new().households(50).build(42));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationBuilder {
    households: usize,
    /// Probability weights for 1..=5 occupants.
    size_weights: [f64; 5],
}

impl PopulationBuilder {
    /// Creates a builder with Swedish-like household-size distribution
    /// (many single and two-person homes).
    pub fn new() -> PopulationBuilder {
        PopulationBuilder {
            households: 100,
            size_weights: [0.38, 0.31, 0.12, 0.13, 0.06],
        }
    }

    /// Sets the number of households to generate.
    pub fn households(mut self, n: usize) -> PopulationBuilder {
        self.households = n;
        self
    }

    /// Sets the probability weights for household sizes 1..=5.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any weight is negative.
    pub fn size_weights(mut self, weights: [f64; 5]) -> PopulationBuilder {
        assert!(
            weights.iter().all(|&w| w >= 0.0) && weights.iter().sum::<f64>() > 0.0,
            "size weights must be non-negative and not all zero"
        );
        self.size_weights = weights;
        self
    }

    /// Generates the population deterministically from `seed`.
    pub fn build(&self, seed: u64) -> Vec<Household> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00b5_e001);
        let total: f64 = self.size_weights.iter().sum();
        let mut homes = Vec::with_capacity(self.households);
        for i in 0..self.households {
            let pick = rng.gen_range(0.0..total);
            let occupants = pick_occupants(&self.size_weights, pick);
            homes.push(Household::standard(HouseholdId(i as u64), occupants));
        }
        homes
    }

    /// Generates the same population as [`PopulationBuilder::build`]
    /// directly into a struct-of-arrays [`PopulationSlab`]: identical
    /// RNG stream, byte-identical field values, but no per-household
    /// heap tree — the backend for city-scale runs.
    pub fn build_slab(&self, seed: u64) -> PopulationSlab {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00b5_e001);
        let total: f64 = self.size_weights.iter().sum();
        let mut slab = PopulationSlab::with_capacity(self.households);
        for i in 0..self.households {
            let pick = rng.gen_range(0.0..total);
            let occupants = pick_occupants(&self.size_weights, pick);
            slab.push_standard(HouseholdId(i as u64), occupants);
        }
        slab
    }
}

impl Default for PopulationBuilder {
    fn default() -> Self {
        PopulationBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_count() {
        let pop = PopulationBuilder::new().households(17).build(1);
        assert_eq!(pop.len(), 17);
    }

    #[test]
    fn deterministic_per_seed() {
        let b = PopulationBuilder::new().households(30);
        assert_eq!(b.build(5), b.build(5));
        assert_ne!(b.build(5), b.build(6));
    }

    #[test]
    fn ids_are_sequential_and_unique() {
        let pop = PopulationBuilder::new().households(10).build(0);
        for (i, h) in pop.iter().enumerate() {
            assert_eq!(h.id().0, i as u64);
        }
    }

    #[test]
    fn size_distribution_roughly_matches_weights() {
        let pop = PopulationBuilder::new().households(2000).build(99);
        let singles = pop.iter().filter(|h| h.occupants() == 1).count() as f64;
        let share = singles / 2000.0;
        assert!((0.30..0.46).contains(&share), "single share {share}");
    }

    #[test]
    fn forced_size_weights() {
        let pop = PopulationBuilder::new()
            .households(50)
            .size_weights([0.0, 0.0, 0.0, 1.0, 0.0])
            .build(3);
        assert!(pop.iter().all(|h| h.occupants() == 4));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn zero_weights_panic() {
        let _ = PopulationBuilder::new().size_weights([0.0; 5]);
    }

    #[test]
    fn fall_through_picks_last_positive_bucket_not_singles() {
        // Adversarial weights: `0.1 + 0.7` rounds to exactly the
        // cumulative edge, so after subtracting 0.1 the draw equals the
        // remaining weight 0.7, `pick < w` fails for every bucket
        // (buckets 3..5 have zero weight) and the loop falls through.
        // The fallback must be the last *positive* bucket (2 occupants),
        // not the zero-weight bucket 5 and not a silent 1.
        let weights = [0.1, 0.7, 0.0, 0.0, 0.0];
        assert_eq!(pick_occupants(&weights, 0.1 + 0.7), 2);
        // In-range draws are untouched by the fix.
        assert_eq!(pick_occupants(&weights, 0.05), 1);
        assert_eq!(pick_occupants(&weights, 0.3), 2);
        // A single-bucket distribution falls back to itself.
        assert_eq!(pick_occupants(&[0.0, 0.0, 1.0, 0.0, 0.0], 1.0), 3);
    }

    #[test]
    fn slab_backend_builds_identical_field_values() {
        use crate::slab::PopulationSlab;
        let b = PopulationBuilder::new().households(120);
        assert_eq!(
            b.build_slab(7),
            PopulationSlab::from_households(&b.build(7))
        );
        // Skewed weights exercise both template arms (laundry / none).
        let skew = PopulationBuilder::new()
            .households(60)
            .size_weights([1.0, 0.0, 0.0, 0.0, 2.0]);
        assert_eq!(
            skew.build_slab(3),
            PopulationSlab::from_households(&skew.build(3))
        );
    }

    #[test]
    fn slab_backend_is_deterministic_per_seed() {
        let b = PopulationBuilder::new().households(40);
        assert_eq!(b.build_slab(5), b.build_slab(5));
        assert_ne!(b.build_slab(5), b.build_slab(6));
    }
}
