//! Generation of heterogeneous household populations.
//!
//! "Consumers are all individuals with their own characteristics and needs"
//! (Section 2) — populations mix household sizes and usage intensities so
//! that the negotiation methods face realistic heterogeneity.

use crate::household::{Household, HouseholdId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Builder for a synthetic population of households.
///
/// # Example
///
/// ```
/// use powergrid::population::PopulationBuilder;
///
/// let homes = PopulationBuilder::new().households(50).build(42);
/// assert_eq!(homes.len(), 50);
/// // Deterministic: same seed, same population.
/// assert_eq!(homes, PopulationBuilder::new().households(50).build(42));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationBuilder {
    households: usize,
    /// Probability weights for 1..=5 occupants.
    size_weights: [f64; 5],
}

impl PopulationBuilder {
    /// Creates a builder with Swedish-like household-size distribution
    /// (many single and two-person homes).
    pub fn new() -> PopulationBuilder {
        PopulationBuilder {
            households: 100,
            size_weights: [0.38, 0.31, 0.12, 0.13, 0.06],
        }
    }

    /// Sets the number of households to generate.
    pub fn households(mut self, n: usize) -> PopulationBuilder {
        self.households = n;
        self
    }

    /// Sets the probability weights for household sizes 1..=5.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any weight is negative.
    pub fn size_weights(mut self, weights: [f64; 5]) -> PopulationBuilder {
        assert!(
            weights.iter().all(|&w| w >= 0.0) && weights.iter().sum::<f64>() > 0.0,
            "size weights must be non-negative and not all zero"
        );
        self.size_weights = weights;
        self
    }

    /// Generates the population deterministically from `seed`.
    pub fn build(&self, seed: u64) -> Vec<Household> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00b5_e001);
        let total: f64 = self.size_weights.iter().sum();
        (0..self.households)
            .map(|i| {
                let mut pick = rng.gen_range(0.0..total);
                let mut occupants = 1u32;
                for (k, &w) in self.size_weights.iter().enumerate() {
                    if pick < w {
                        occupants = k as u32 + 1;
                        break;
                    }
                    pick -= w;
                }
                Household::standard(HouseholdId(i as u64), occupants)
            })
            .collect()
    }
}

impl Default for PopulationBuilder {
    fn default() -> Self {
        PopulationBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_count() {
        let pop = PopulationBuilder::new().households(17).build(1);
        assert_eq!(pop.len(), 17);
    }

    #[test]
    fn deterministic_per_seed() {
        let b = PopulationBuilder::new().households(30);
        assert_eq!(b.build(5), b.build(5));
        assert_ne!(b.build(5), b.build(6));
    }

    #[test]
    fn ids_are_sequential_and_unique() {
        let pop = PopulationBuilder::new().households(10).build(0);
        for (i, h) in pop.iter().enumerate() {
            assert_eq!(h.id().0, i as u64);
        }
    }

    #[test]
    fn size_distribution_roughly_matches_weights() {
        let pop = PopulationBuilder::new().households(2000).build(99);
        let singles = pop.iter().filter(|h| h.occupants() == 1).count() as f64;
        let share = singles / 2000.0;
        assert!((0.30..0.46).contains(&share), "single share {share}");
    }

    #[test]
    fn forced_size_weights() {
        let pop = PopulationBuilder::new()
            .households(50)
            .size_weights([0.0, 0.0, 0.0, 1.0, 0.0])
            .build(3);
        assert!(pop.iter().all(|h| h.occupants() == 4));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn zero_weights_panic() {
        let _ = PopulationBuilder::new().size_weights([0.0; 5]);
    }
}
