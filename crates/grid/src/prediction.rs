//! Statistical load predictors.
//!
//! Section 5.1.2: "To predict the balance between consumption and
//! production, available information is analysed and predictions are
//! calculated on the basis of statistical models." The Utility Agent can be
//! configured with any of the predictors here; accuracy metrics allow the
//! experiments to compare them.

use crate::series::Series;
use crate::time::TimeAxis;
use std::fmt;

/// A statistical model predicting today's demand curve from recent history
/// and (optionally) today's weather forecast.
///
/// Predictors are `Send + Sync`: campaign and fleet runners share one
/// chosen predictor across worker threads (prediction itself is pure).
pub trait LoadPredictor: fmt::Debug + Send + Sync {
    /// Predicts today's demand (kWh per slot).
    ///
    /// `history` holds the most recent full days, oldest first; `weather`
    /// is today's forecast temperature series on the same axis.
    ///
    /// # Panics
    ///
    /// Implementations panic if `history` is empty or series axes disagree.
    fn predict(&self, history: &[Series], weather: &Series) -> Series;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

fn check_history(history: &[Series], axis: TimeAxis) {
    assert!(
        !history.is_empty(),
        "predictor needs at least one day of history"
    );
    for day in history {
        assert_eq!(
            day.axis(),
            axis,
            "history days must share the forecast axis"
        );
    }
}

/// Predicts the mean of the last `window` days.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MovingAverage {
    window: usize,
}

impl MovingAverage {
    /// Creates a moving-average predictor.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> MovingAverage {
        assert!(window > 0, "window must be positive");
        MovingAverage { window }
    }
}

impl LoadPredictor for MovingAverage {
    fn predict(&self, history: &[Series], weather: &Series) -> Series {
        check_history(history, weather.axis());
        let days = &history[history.len().saturating_sub(self.window)..];
        let mut acc = Series::zeros(weather.axis());
        for day in days {
            acc.accumulate(day);
        }
        acc.scale(1.0 / days.len() as f64)
    }

    fn name(&self) -> &'static str {
        "moving-average"
    }
}

/// Exponentially weighted average: `s_t = α·x_t + (1-α)·s_{t-1}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialSmoothing {
    alpha: f64,
}

impl ExponentialSmoothing {
    /// Creates an exponential-smoothing predictor.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> ExponentialSmoothing {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        ExponentialSmoothing { alpha }
    }
}

impl LoadPredictor for ExponentialSmoothing {
    fn predict(&self, history: &[Series], weather: &Series) -> Series {
        check_history(history, weather.axis());
        let mut state = history[0].clone();
        for day in &history[1..] {
            state = state
                .zip_with(day, |s, x| self.alpha * x + (1.0 - self.alpha) * s)
                .expect("axes checked above");
        }
        state
    }

    fn name(&self) -> &'static str {
        "exponential-smoothing"
    }
}

/// Predicts a repeat of the most recent day (seasonal naïve with period 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeasonalNaive;

impl LoadPredictor for SeasonalNaive {
    fn predict(&self, history: &[Series], weather: &Series) -> Series {
        check_history(history, weather.axis());
        history.last().expect("non-empty history").clone()
    }

    fn name(&self) -> &'static str {
        "seasonal-naive"
    }
}

/// Scales the recent average by a linear temperature-sensitivity term
/// fitted implicitly: colder forecast ⇒ higher prediction.
///
/// The model is `pred = avg · (1 + k · (T_ref − T_forecast))` with
/// reference temperature `t_ref` and sensitivity `k` per °C.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeatherRegression {
    base: MovingAverage,
    t_ref: f64,
    sensitivity: f64,
}

impl WeatherRegression {
    /// Creates a weather-sensitive predictor over a `window`-day average.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `sensitivity` is negative.
    pub fn new(window: usize, t_ref: f64, sensitivity: f64) -> WeatherRegression {
        assert!(sensitivity >= 0.0, "sensitivity must be non-negative");
        WeatherRegression {
            base: MovingAverage::new(window),
            t_ref,
            sensitivity,
        }
    }

    /// A predictor calibrated to the household heating model of this crate
    /// (reference 0 °C, ~1.5 %/°C aggregate sensitivity).
    pub fn calibrated() -> WeatherRegression {
        WeatherRegression::new(3, 0.0, 0.015)
    }
}

impl LoadPredictor for WeatherRegression {
    fn predict(&self, history: &[Series], weather: &Series) -> Series {
        let avg = self.base.predict(history, weather);
        let t_forecast = weather.mean();
        let factor = (1.0 + self.sensitivity * (self.t_ref - t_forecast)).max(0.0);
        avg.scale(factor)
    }

    fn name(&self) -> &'static str {
        "weather-regression"
    }
}

/// Holt's linear-trend method applied per slot: level and trend are
/// updated day over day, and the forecast extrapolates one day ahead.
/// Captures demand drifting with a cold spell where plain smoothing lags.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoltTrend {
    alpha: f64,
    beta: f64,
}

impl HoltTrend {
    /// Creates a Holt predictor with level gain `alpha` and trend gain
    /// `beta`.
    ///
    /// # Panics
    ///
    /// Panics unless both gains are in `(0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> HoltTrend {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        assert!(
            beta > 0.0 && beta <= 1.0,
            "beta must be in (0, 1], got {beta}"
        );
        HoltTrend { alpha, beta }
    }
}

impl LoadPredictor for HoltTrend {
    fn predict(&self, history: &[Series], weather: &Series) -> Series {
        check_history(history, weather.axis());
        let n = weather.axis().slots_per_day();
        let mut level: Vec<f64> = history[0].values().to_vec();
        let mut trend = vec![0.0f64; n];
        for day in &history[1..] {
            for i in 0..n {
                let prev_level = level[i];
                level[i] = self.alpha * day[i] + (1.0 - self.alpha) * (prev_level + trend[i]);
                trend[i] = self.beta * (level[i] - prev_level) + (1.0 - self.beta) * trend[i];
            }
        }
        let values = (0..n).map(|i| (level[i] + trend[i]).max(0.0)).collect();
        Series::from_values(weather.axis(), values)
    }

    fn name(&self) -> &'static str {
        "holt-trend"
    }
}

/// Prediction-accuracy metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Root-mean-squared error, kWh per slot.
    pub rmse: f64,
    /// Mean absolute percentage error, in `[0, ∞)`.
    pub mape: f64,
}

/// Computes accuracy of `predicted` against `actual`.
///
/// Slots whose actual value is zero are excluded from the MAPE (their
/// percentage error is undefined); on a day with **no** nonzero slot — a
/// blackout — the MAPE is defined as `0.0` rather than `0.0 / 0.0`, so
/// downstream ranking ([`backtest`]'s sort, [`select_best`]) never meets
/// a NaN score and never panics mid-campaign.
///
/// # Panics
///
/// Panics if the series axes differ.
pub fn accuracy(predicted: &Series, actual: &Series) -> Accuracy {
    assert_eq!(
        predicted.axis(),
        actual.axis(),
        "accuracy over mismatched axes"
    );
    let n = actual.len() as f64;
    let mut se = 0.0;
    let mut ape = 0.0;
    let mut ape_n = 0.0;
    for (&p, &a) in predicted.values().iter().zip(actual.values()) {
        se += (p - a).powi(2);
        if a.abs() > f64::EPSILON {
            ape += ((p - a) / a).abs();
            ape_n += 1.0;
        }
    }
    Accuracy {
        rmse: (se / n).sqrt(),
        mape: if ape_n > 0.0 { ape / ape_n } else { 0.0 },
    }
}

/// Backtest report for one predictor over a rolling evaluation.
#[derive(Debug, Clone)]
pub struct BacktestRow {
    /// Predictor name.
    pub name: &'static str,
    /// Mean RMSE across evaluation days.
    pub mean_rmse: f64,
    /// Mean MAPE across evaluation days.
    pub mean_mape: f64,
    /// Days evaluated.
    pub days: usize,
}

/// Why a backtest (or [`select_best`]) could not be evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BacktestError {
    /// `warmup` was zero: the first prediction needs at least one day of
    /// history.
    NoWarmup,
    /// The data ends inside the warmup: nothing is left to score.
    InsufficientDays {
        /// Days of data supplied.
        days: usize,
        /// Warmup requested.
        warmup: usize,
    },
    /// The weather series list does not cover the actuals one-to-one.
    WeatherMismatch {
        /// Days of actual demand supplied.
        actuals: usize,
        /// Weather series supplied.
        weather: usize,
    },
    /// No candidate predictors were supplied.
    NoCandidates,
}

impl fmt::Display for BacktestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BacktestError::NoWarmup => write!(f, "backtest needs at least one warmup day"),
            BacktestError::InsufficientDays { days, warmup } => write!(
                f,
                "{days} days leave nothing to evaluate after {warmup} warmup days"
            ),
            BacktestError::WeatherMismatch { actuals, weather } => write!(
                f,
                "weather must cover every day: {actuals} actuals vs {weather} weather series"
            ),
            BacktestError::NoCandidates => write!(f, "no candidate predictors supplied"),
        }
    }
}

impl std::error::Error for BacktestError {}

fn check_backtest(
    predictors: &[&dyn LoadPredictor],
    actuals: &[Series],
    weather: &[Series],
    warmup: usize,
) -> Result<(), BacktestError> {
    if predictors.is_empty() {
        return Err(BacktestError::NoCandidates);
    }
    if warmup == 0 {
        return Err(BacktestError::NoWarmup);
    }
    if actuals.len() <= warmup {
        return Err(BacktestError::InsufficientDays {
            days: actuals.len(),
            warmup,
        });
    }
    if actuals.len() != weather.len() {
        return Err(BacktestError::WeatherMismatch {
            actuals: actuals.len(),
            weather: weather.len(),
        });
    }
    Ok(())
}

fn score(
    p: &dyn LoadPredictor,
    actuals: &[Series],
    weather: &[Series],
    warmup: usize,
) -> BacktestRow {
    let mut rmse = 0.0;
    let mut mape = 0.0;
    let mut days = 0;
    for d in warmup..actuals.len() {
        let pred = p.predict(&actuals[..d], &weather[d]);
        let acc = accuracy(&pred, &actuals[d]);
        rmse += acc.rmse;
        mape += acc.mape;
        days += 1;
    }
    BacktestRow {
        name: p.name(),
        mean_rmse: rmse / days as f64,
        mean_mape: mape / days as f64,
        days,
    }
}

/// Rolling-origin backtest: for each day `d ≥ warmup`, predict day `d`
/// from days `0..d` and score against the actual. Returns one row per
/// predictor, sorted by MAPE (best first).
///
/// # Errors
///
/// Returns a [`BacktestError`] when no predictors are supplied, `warmup`
/// is zero, `actuals.len() <= warmup`, or the weather series list does
/// not match the actuals.
pub fn backtest(
    predictors: &[&dyn LoadPredictor],
    actuals: &[Series],
    weather: &[Series],
    warmup: usize,
) -> Result<Vec<BacktestRow>, BacktestError> {
    check_backtest(predictors, actuals, weather, warmup)?;
    let mut rows: Vec<BacktestRow> = predictors
        .iter()
        .map(|p| score(*p, actuals, weather, warmup))
        .collect();
    rows.sort_by(|a, b| {
        a.mean_mape
            .partial_cmp(&b.mean_mape)
            .expect("finite scores")
    });
    Ok(rows)
}

/// Picks the candidate with the lowest rolling-backtest MAPE over the
/// given window (ties go to the earliest candidate, so selection is
/// deterministic even among equally accurate models).
///
/// This is the library form of the hand-rolled "backtest, then match on
/// the winner's name" loop campaigns used to carry; a campaign's
/// predictor policy calls it once over the warmup window.
///
/// # Errors
///
/// Returns a [`BacktestError`] under the same conditions as [`backtest`].
pub fn select_best<'a>(
    candidates: &[&'a dyn LoadPredictor],
    actuals: &[Series],
    weather: &[Series],
    warmup: usize,
) -> Result<&'a dyn LoadPredictor, BacktestError> {
    check_backtest(candidates, actuals, weather, warmup)?;
    let best = candidates
        .iter()
        .map(|p| score(*p, actuals, weather, warmup).mean_mape)
        .enumerate()
        .fold(None, |best: Option<(usize, f64)>, (i, mape)| match best {
            Some((_, b)) if b <= mape => best,
            _ => Some((i, mape)),
        })
        .expect("candidates checked non-empty")
        .0;
    Ok(candidates[best])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::aggregate_demand;
    use crate::population::PopulationBuilder;
    use crate::weather::WeatherModel;

    fn axis() -> TimeAxis {
        TimeAxis::hourly()
    }

    fn history_and_today() -> (Vec<Series>, Series, Series) {
        let homes = PopulationBuilder::new().households(40).build(11);
        let model = WeatherModel::winter();
        let mut history = Vec::new();
        for day in 0..5 {
            let weather = model.temperatures(&axis(), day);
            history.push(
                aggregate_demand(&homes, &weather, &axis(), day)
                    .series()
                    .clone(),
            );
        }
        let today_weather = model.temperatures(&axis(), 5);
        let today = aggregate_demand(&homes, &today_weather, &axis(), 5)
            .series()
            .clone();
        (history, today_weather, today)
    }

    #[test]
    fn moving_average_of_constant_history() {
        let history = vec![Series::constant(axis(), 2.0); 4];
        let weather = Series::constant(axis(), -4.0);
        let pred = MovingAverage::new(3).predict(&history, &weather);
        assert!((pred.sum() - 48.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn empty_history_panics() {
        let weather = Series::constant(axis(), 0.0);
        let _ = MovingAverage::new(3).predict(&[], &weather);
    }

    #[test]
    fn exponential_smoothing_converges_to_recent() {
        let old = Series::constant(axis(), 1.0);
        let new = Series::constant(axis(), 10.0);
        let history = vec![old, new.clone(), new.clone(), new.clone(), new.clone()];
        let weather = Series::constant(axis(), 0.0);
        let pred = ExponentialSmoothing::new(0.7).predict(&history, &weather);
        assert!(
            (pred[0] - 10.0).abs() < 0.1,
            "pred {} should be near 10",
            pred[0]
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn bad_alpha_panics() {
        let _ = ExponentialSmoothing::new(0.0);
    }

    #[test]
    fn seasonal_naive_repeats_yesterday() {
        let (history, weather, _) = history_and_today();
        let pred = SeasonalNaive.predict(&history, &weather);
        assert_eq!(&pred, history.last().unwrap());
    }

    #[test]
    fn weather_regression_raises_prediction_on_cold_forecast() {
        let history = vec![Series::constant(axis(), 5.0); 3];
        let reg = WeatherRegression::new(3, 0.0, 0.02);
        let cold = reg.predict(&history, &Series::constant(axis(), -10.0));
        let warm = reg.predict(&history, &Series::constant(axis(), 10.0));
        assert!(cold.sum() > warm.sum());
    }

    #[test]
    fn predictors_have_reasonable_accuracy_on_real_series() {
        let (history, weather, today) = history_and_today();
        let predictors: Vec<Box<dyn LoadPredictor>> = vec![
            Box::new(MovingAverage::new(3)),
            Box::new(ExponentialSmoothing::new(0.5)),
            Box::new(SeasonalNaive),
            Box::new(WeatherRegression::calibrated()),
        ];
        for p in &predictors {
            let pred = p.predict(&history, &weather);
            let acc = accuracy(&pred, &today);
            assert!(
                acc.mape < 0.25,
                "{} MAPE {} too high for stable winter demand",
                p.name(),
                acc.mape
            );
        }
    }

    #[test]
    fn accuracy_of_perfect_prediction_is_zero() {
        let s = Series::constant(axis(), 3.0);
        let acc = accuracy(&s, &s);
        assert_eq!(acc.rmse, 0.0);
        assert_eq!(acc.mape, 0.0);
    }

    #[test]
    fn predictor_names_are_distinct() {
        let names = [
            MovingAverage::new(1).name(),
            ExponentialSmoothing::new(0.5).name(),
            SeasonalNaive.name(),
            WeatherRegression::calibrated().name(),
            HoltTrend::new(0.5, 0.3).name(),
        ];
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn holt_tracks_a_linear_trend() {
        // Demand rising 1 kWh/slot per day: Holt extrapolates, the plain
        // moving average lags behind.
        let history: Vec<Series> = (0..6)
            .map(|d| Series::constant(axis(), 10.0 + d as f64))
            .collect();
        let actual_next = Series::constant(axis(), 16.0);
        let weather = Series::constant(axis(), 0.0);
        let holt = HoltTrend::new(0.6, 0.4).predict(&history, &weather);
        let ma = MovingAverage::new(3).predict(&history, &weather);
        let holt_err = accuracy(&holt, &actual_next).rmse;
        let ma_err = accuracy(&ma, &actual_next).rmse;
        assert!(
            holt_err < ma_err,
            "Holt {holt_err} should beat MA {ma_err} on a trend"
        );
    }

    #[test]
    fn holt_never_predicts_negative() {
        let history: Vec<Series> = (0..4)
            .map(|d| Series::constant(axis(), (3 - d) as f64))
            .collect();
        let weather = Series::constant(axis(), 0.0);
        let pred = HoltTrend::new(0.9, 0.9).predict(&history, &weather);
        assert!(pred.min() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn holt_validates_gains() {
        let _ = HoltTrend::new(0.0, 0.5);
    }

    #[test]
    fn backtest_ranks_predictors() {
        let (history, _, _) = history_and_today();
        let homes = PopulationBuilder::new().households(40).build(11);
        let model = WeatherModel::winter();
        let mut actuals = history.clone();
        let mut weathers: Vec<Series> = (0..actuals.len() as u64)
            .map(|d| model.temperatures(&axis(), d))
            .collect();
        for day in 5..9u64 {
            let w = model.temperatures(&axis(), day);
            actuals.push(aggregate_demand(&homes, &w, &axis(), day).series().clone());
            weathers.push(w);
        }
        let ma = MovingAverage::new(3);
        let naive = SeasonalNaive;
        let holt = HoltTrend::new(0.5, 0.2);
        let rows = backtest(&[&ma, &naive, &holt], &actuals, &weathers, 3).expect("enough days");
        assert_eq!(rows.len(), 3);
        // Sorted best-first.
        for pair in rows.windows(2) {
            assert!(pair[0].mean_mape <= pair[1].mean_mape);
        }
        for row in &rows {
            assert!(row.days == actuals.len() - 3);
            assert!(
                row.mean_mape < 0.5,
                "{} wildly off: {}",
                row.name,
                row.mean_mape
            );
        }
    }

    #[test]
    fn backtest_needs_evaluation_days() {
        let actuals = vec![Series::constant(axis(), 1.0); 2];
        let weathers = vec![Series::constant(axis(), 0.0); 2];
        let ma = MovingAverage::new(1);
        let err = backtest(&[&ma], &actuals, &weathers, 2).unwrap_err();
        assert_eq!(err, BacktestError::InsufficientDays { days: 2, warmup: 2 });
        assert!(err.to_string().contains("nothing to evaluate"));
        // The other misuse modes are errors too, never panics.
        assert_eq!(
            backtest(&[&ma], &actuals, &weathers, 0).unwrap_err(),
            BacktestError::NoWarmup
        );
        assert_eq!(
            backtest(&[], &actuals, &weathers, 1).unwrap_err(),
            BacktestError::NoCandidates
        );
        let short_weather = vec![Series::constant(axis(), 0.0); 1];
        assert_eq!(
            backtest(&[&ma], &actuals, &short_weather, 1).unwrap_err(),
            BacktestError::WeatherMismatch {
                actuals: 2,
                weather: 1
            }
        );
    }

    #[test]
    fn select_best_returns_the_lowest_mape_candidate() {
        let (history, _, _) = history_and_today();
        let homes = PopulationBuilder::new().households(40).build(11);
        let model = WeatherModel::winter();
        let mut actuals = history;
        let mut weathers: Vec<Series> = (0..actuals.len() as u64)
            .map(|d| model.temperatures(&axis(), d))
            .collect();
        for day in 5..9u64 {
            let w = model.temperatures(&axis(), day);
            actuals.push(aggregate_demand(&homes, &w, &axis(), day).series().clone());
            weathers.push(w);
        }
        let ma = MovingAverage::new(3);
        let naive = SeasonalNaive;
        let holt = HoltTrend::new(0.5, 0.2);
        let candidates: [&dyn LoadPredictor; 3] = [&ma, &naive, &holt];
        let best = select_best(&candidates, &actuals, &weathers, 3).expect("enough days");
        let rows = backtest(&candidates, &actuals, &weathers, 3).expect("enough days");
        assert_eq!(
            best.name(),
            rows[0].name,
            "select_best must agree with the backtest ranking"
        );
        // Errors propagate exactly as for `backtest`.
        assert_eq!(
            select_best(&candidates, &actuals[..3], &weathers[..3], 3).unwrap_err(),
            BacktestError::InsufficientDays { days: 3, warmup: 3 }
        );
    }

    #[test]
    fn blackout_day_yields_zero_mape_not_nan() {
        // Regression: an all-zero actual day has ape_n == 0; the MAPE
        // must be defined as 0.0, not NaN, or `backtest`'s score sort and
        // `select_best` panic on `.expect("finite scores")` mid-campaign.
        let blackout = Series::zeros(axis());
        let pred = Series::constant(axis(), 3.0);
        let acc = accuracy(&pred, &blackout);
        assert_eq!(acc.mape, 0.0, "blackout MAPE is defined as zero");
        assert!(acc.rmse.is_finite());
    }

    #[test]
    fn backtest_and_selection_survive_a_blackout_day() {
        // A grid-wide outage in the scored window: every predictor's MAPE
        // stays finite, ranking still works, and selection is
        // deterministic — no NaN poisoning the sort.
        let mut actuals = vec![Series::constant(axis(), 5.0); 3];
        actuals.push(Series::zeros(axis())); // the blackout day, scored
        actuals.push(Series::constant(axis(), 5.0));
        let weathers = vec![Series::constant(axis(), -2.0); actuals.len()];
        let ma = MovingAverage::new(2);
        let naive = SeasonalNaive;
        let candidates: [&dyn LoadPredictor; 2] = [&ma, &naive];
        let rows = backtest(&candidates, &actuals, &weathers, 2).expect("enough days");
        for row in &rows {
            assert!(row.mean_mape.is_finite(), "{}: {}", row.name, row.mean_mape);
            assert!(row.mean_rmse.is_finite());
        }
        let best = select_best(&candidates, &actuals, &weathers, 2).expect("enough days");
        assert_eq!(best.name(), rows[0].name);
    }

    #[test]
    fn select_best_breaks_ties_deterministically() {
        // Two copies of the same model score identically; the earliest
        // candidate must win so campaign predictor selection is replayable.
        let history = vec![Series::constant(axis(), 2.0); 5];
        let weather = vec![Series::constant(axis(), 0.0); 5];
        let a = MovingAverage::new(2);
        let b = MovingAverage::new(2);
        let c = MovingAverage::new(3);
        let candidates: [&dyn LoadPredictor; 3] = [&a, &b, &c];
        let best = select_best(&candidates, &history, &weather, 2).expect("enough days");
        assert!(std::ptr::eq(
            best as *const dyn LoadPredictor as *const u8,
            &a as *const MovingAverage as *const u8
        ));
    }
}
