//! Two-tier production model: normal vs expensive production (Figure 1).
//!
//! Figure 1 of the paper shows a demand curve crossing from "normal
//! production costs" into "expensive production costs" at peak times. The
//! Producer Agent reports availability and cost from this model.

use crate::series::Series;
use crate::time::TimeAxis;
use crate::units::{KilowattHours, Kilowatts, Money, PricePerKwh};
use serde::{Deserialize, Serialize};

/// Generation capacity split into a cheap base tier and an expensive
/// peaking tier.
///
/// # Example
///
/// ```
/// use powergrid::production::ProductionModel;
/// use powergrid::units::{Kilowatts, KilowattHours};
///
/// let p = ProductionModel::two_tier(Kilowatts(100.0), Kilowatts(150.0));
/// // Energy served within normal capacity costs the base rate.
/// let cheap = p.cost_of_energy(KilowattHours(50.0), 1.0);
/// let pricey = p.cost_of_energy(KilowattHours(120.0), 1.0);
/// assert!(pricey.value() > cheap.value() * 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductionModel {
    normal_capacity: Kilowatts,
    total_capacity: Kilowatts,
    normal_cost: PricePerKwh,
    expensive_cost: PricePerKwh,
}

/// Error returned when demand exceeds even the expensive capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityExceededError {
    /// Demanded power.
    pub demanded: Kilowatts,
    /// Total installed capacity.
    pub capacity: Kilowatts,
}

impl std::fmt::Display for CapacityExceededError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "demand {} exceeds total capacity {}",
            self.demanded, self.capacity
        )
    }
}

impl std::error::Error for CapacityExceededError {}

impl ProductionModel {
    /// Default cost of base-tier production.
    pub const DEFAULT_NORMAL_COST: PricePerKwh = PricePerKwh(0.30);
    /// Default cost of peaking-tier production.
    pub const DEFAULT_EXPENSIVE_COST: PricePerKwh = PricePerKwh(1.10);

    /// Creates a two-tier model with default costs.
    ///
    /// # Panics
    ///
    /// Panics if capacities are negative or `total < normal`.
    pub fn two_tier(normal_capacity: Kilowatts, total_capacity: Kilowatts) -> ProductionModel {
        ProductionModel::with_costs(
            normal_capacity,
            total_capacity,
            Self::DEFAULT_NORMAL_COST,
            Self::DEFAULT_EXPENSIVE_COST,
        )
    }

    /// Creates a two-tier model with explicit costs.
    ///
    /// # Panics
    ///
    /// Panics if capacities are negative, `total < normal`, or the
    /// expensive cost is below the normal cost.
    pub fn with_costs(
        normal_capacity: Kilowatts,
        total_capacity: Kilowatts,
        normal_cost: PricePerKwh,
        expensive_cost: PricePerKwh,
    ) -> ProductionModel {
        assert!(
            normal_capacity.value() >= 0.0,
            "normal capacity must be non-negative"
        );
        assert!(
            total_capacity >= normal_capacity,
            "total capacity {total_capacity} below normal capacity {normal_capacity}"
        );
        assert!(
            expensive_cost >= normal_cost,
            "expensive production should not be cheaper than normal production"
        );
        ProductionModel {
            normal_capacity,
            total_capacity,
            normal_cost,
            expensive_cost,
        }
    }

    /// Base-tier capacity.
    pub fn normal_capacity(&self) -> Kilowatts {
        self.normal_capacity
    }

    /// Total installed capacity.
    pub fn total_capacity(&self) -> Kilowatts {
        self.total_capacity
    }

    /// Cost of base-tier energy.
    pub fn normal_cost(&self) -> PricePerKwh {
        self.normal_cost
    }

    /// Cost of peaking-tier energy.
    pub fn expensive_cost(&self) -> PricePerKwh {
        self.expensive_cost
    }

    /// Normal capacity expressed as energy per slot on `axis`.
    pub fn normal_capacity_per_slot(&self, axis: TimeAxis) -> KilowattHours {
        self.normal_capacity.for_hours(axis.slot_hours())
    }

    /// Production cost of serving `energy` delivered over `hours` hours:
    /// energy within normal capacity at the base rate, the excess at the
    /// expensive rate. Demand beyond total capacity is still billed at the
    /// expensive rate (interpreted as imports), mirroring how the paper's
    /// utility always serves demand but at higher production cost.
    pub fn cost_of_energy(&self, energy: KilowattHours, hours: f64) -> Money {
        assert!(hours > 0.0, "duration must be positive");
        let cheap_cap = self.normal_capacity.for_hours(hours);
        let cheap = energy.min(cheap_cap).clamp_non_negative();
        let pricey = (energy - cheap).clamp_non_negative();
        cheap * self.normal_cost + pricey * self.expensive_cost
    }

    /// Production cost of an entire demand curve (kWh per slot).
    pub fn cost_of_curve(&self, demand: &Series) -> Money {
        let slot_hours = demand.axis().slot_hours();
        demand
            .values()
            .iter()
            .map(|&kwh| self.cost_of_energy(KilowattHours(kwh), slot_hours))
            .sum()
    }

    /// Checks whether average power `demanded` can be served at all.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityExceededError`] when `demanded` exceeds the total
    /// installed capacity.
    pub fn check_feasible(&self, demanded: Kilowatts) -> Result<(), CapacityExceededError> {
        if demanded > self.total_capacity {
            Err(CapacityExceededError {
                demanded,
                capacity: self.total_capacity,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeAxis;

    fn model() -> ProductionModel {
        ProductionModel::two_tier(Kilowatts(100.0), Kilowatts(150.0))
    }

    #[test]
    fn accessors() {
        let m = model();
        assert_eq!(m.normal_capacity(), Kilowatts(100.0));
        assert_eq!(m.total_capacity(), Kilowatts(150.0));
        assert!(m.expensive_cost() > m.normal_cost());
    }

    #[test]
    #[should_panic(expected = "below normal capacity")]
    fn total_below_normal_panics() {
        let _ = ProductionModel::two_tier(Kilowatts(100.0), Kilowatts(50.0));
    }

    #[test]
    #[should_panic(expected = "cheaper than normal")]
    fn inverted_costs_panic() {
        let _ = ProductionModel::with_costs(
            Kilowatts(10.0),
            Kilowatts(20.0),
            PricePerKwh(1.0),
            PricePerKwh(0.5),
        );
    }

    #[test]
    fn cheap_energy_at_base_rate() {
        let m = model();
        let cost = m.cost_of_energy(KilowattHours(50.0), 1.0);
        assert_eq!(cost, Money(50.0 * m.normal_cost().value()));
    }

    #[test]
    fn peak_energy_split_across_tiers() {
        let m = model();
        let cost = m.cost_of_energy(KilowattHours(120.0), 1.0);
        let expected = 100.0 * m.normal_cost().value() + 20.0 * m.expensive_cost().value();
        assert!((cost.value() - expected).abs() < 1e-9);
    }

    #[test]
    fn marginal_cost_jumps_at_capacity() {
        let m = model();
        let below = m.cost_of_energy(KilowattHours(100.0), 1.0);
        let above = m.cost_of_energy(KilowattHours(101.0), 1.0);
        let marginal = above - below;
        assert!((marginal.value() - m.expensive_cost().value()).abs() < 1e-9);
    }

    #[test]
    fn per_slot_capacity_scales_with_axis() {
        let m = model();
        assert_eq!(
            m.normal_capacity_per_slot(TimeAxis::hourly()),
            KilowattHours(100.0)
        );
        assert_eq!(
            m.normal_capacity_per_slot(TimeAxis::quarter_hourly()),
            KilowattHours(25.0)
        );
    }

    #[test]
    fn curve_cost_sums_slots() {
        let m = model();
        let axis = TimeAxis::hourly();
        let demand = Series::constant(axis, 50.0);
        let cost = m.cost_of_curve(&demand);
        assert!((cost.value() - 24.0 * 50.0 * m.normal_cost().value()).abs() < 1e-9);
    }

    #[test]
    fn feasibility_check() {
        let m = model();
        assert!(m.check_feasible(Kilowatts(150.0)).is_ok());
        let err = m.check_feasible(Kilowatts(151.0)).unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn negative_energy_costs_nothing() {
        let m = model();
        assert_eq!(m.cost_of_energy(KilowattHours(-5.0), 1.0), Money::ZERO);
    }
}
