//! Daily time series over a [`TimeAxis`].
//!
//! Demand curves, temperature profiles and predictions are all series of
//! `f64` values, one per slot. The unit carried by a series is documented at
//! each use site (kWh per slot for demand, °C for temperature).

use crate::time::{Interval, TimeAxis};
use crate::units::KilowattHours;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, Mul, Sub};

/// A time series with one value per slot of its [`TimeAxis`].
///
/// # Example
///
/// ```
/// use powergrid::series::Series;
/// use powergrid::time::TimeAxis;
///
/// let axis = TimeAxis::hourly();
/// let s = Series::constant(axis, 2.0);
/// assert_eq!(s.sum(), 48.0);
/// assert_eq!(s.max(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    axis: TimeAxis,
    values: Vec<f64>,
}

/// Error returned when combining series defined on different axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxisMismatchError {
    /// Slot length of the left-hand series.
    pub left_slot_minutes: u32,
    /// Slot length of the right-hand series.
    pub right_slot_minutes: u32,
}

impl fmt::Display for AxisMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "time axes differ: {}-minute vs {}-minute slots",
            self.left_slot_minutes, self.right_slot_minutes
        )
    }
}

impl std::error::Error for AxisMismatchError {}

impl Series {
    /// Creates a series from raw per-slot values.
    ///
    /// # Panics
    ///
    /// Panics if the number of values differs from `axis.slots_per_day()`.
    pub fn from_values(axis: TimeAxis, values: Vec<f64>) -> Series {
        assert_eq!(
            values.len(),
            axis.slots_per_day(),
            "series length {} does not match axis with {} slots",
            values.len(),
            axis.slots_per_day()
        );
        Series { axis, values }
    }

    /// A series of zeros.
    pub fn zeros(axis: TimeAxis) -> Series {
        Series::constant(axis, 0.0)
    }

    /// A series with every slot equal to `value`.
    pub fn constant(axis: TimeAxis, value: f64) -> Series {
        Series {
            axis,
            values: vec![value; axis.slots_per_day()],
        }
    }

    /// Builds a series by evaluating `f` at the fractional day position of
    /// each slot midpoint (`0.0` = midnight, `0.5` = noon).
    pub fn from_fn(axis: TimeAxis, mut f: impl FnMut(f64) -> f64) -> Series {
        let n = axis.slots_per_day();
        let values = (0..n).map(|i| f((i as f64 + 0.5) / n as f64)).collect();
        Series { axis, values }
    }

    /// The axis this series is defined on.
    pub fn axis(&self) -> TimeAxis {
        self.axis
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the series has no slots (never happens for valid axes).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Per-slot values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to per-slot values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Sum over all slots.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Sum over the slots in `interval` (clipped to the series length).
    pub fn sum_over(&self, interval: Interval) -> f64 {
        interval
            .intersect(Interval::new(0, self.len()))
            .iter()
            .map(|i| self.values[i])
            .sum()
    }

    /// Maximum slot value (`0.0` for an empty series).
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max(f64::NEG_INFINITY)
    }

    /// Minimum slot value.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Mean slot value.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty.
    pub fn mean(&self) -> f64 {
        assert!(!self.values.is_empty(), "mean of empty series");
        self.sum() / self.len() as f64
    }

    /// Index of the maximum slot (first one on ties).
    ///
    /// # Panics
    ///
    /// Panics if the series is empty — consistent with [`Series::mean`]
    /// and unlike a silent `0`, which would be an out-of-range index.
    pub fn argmax(&self) -> usize {
        self.values
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("series values are finite"))
            .map(|(i, _)| i)
            .expect("argmax of empty series")
    }

    /// Applies `f` to every slot value, producing a new series.
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> Series {
        Series {
            axis: self.axis,
            values: self.values.iter().copied().map(f).collect(),
        }
    }

    /// Scales every slot by `factor`.
    pub fn scale(&self, factor: f64) -> Series {
        self.map(|v| v * factor)
    }

    /// Pointwise combination of two series on the same axis.
    ///
    /// # Errors
    ///
    /// Returns [`AxisMismatchError`] if the axes differ.
    pub fn zip_with(
        &self,
        other: &Series,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Result<Series, AxisMismatchError> {
        if self.axis != other.axis {
            return Err(AxisMismatchError {
                left_slot_minutes: self.axis.slot_minutes(),
                right_slot_minutes: other.axis.slot_minutes(),
            });
        }
        Ok(Series {
            axis: self.axis,
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Adds `other` into this series in place.
    ///
    /// # Panics
    ///
    /// Panics if the axes differ.
    pub fn accumulate(&mut self, other: &Series) {
        assert_eq!(
            self.axis, other.axis,
            "cannot accumulate series on different axes"
        );
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += b;
        }
    }

    /// Centered moving average with window `2 * half + 1`, clamped at the
    /// day boundaries. `half == 0` returns a clone.
    ///
    /// Windows **saturate** at the series edges — they never wrap around
    /// midnight. The window for slot `i` is `[i - half, i + half]`
    /// intersected with `[0, len)`, so edge slots average over fewer
    /// values (the first slot's window is `[0, half]`); each window is
    /// divided by its *own* length, which is why a constant series stays
    /// constant at the edges.
    pub fn smooth(&self, half: usize) -> Series {
        if half == 0 {
            return self.clone();
        }
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            let window = &self.values[lo..hi];
            out.push(window.iter().sum::<f64>() / window.len() as f64);
        }
        Series {
            axis: self.axis,
            values: out,
        }
    }

    /// Total energy when this series is interpreted as kWh per slot.
    pub fn total(&self) -> KilowattHours {
        KilowattHours(self.sum())
    }

    /// Energy over `interval` when interpreted as kWh per slot.
    pub fn energy_over(&self, interval: Interval) -> KilowattHours {
        KilowattHours(self.sum_over(interval))
    }

    /// Renders a compact ASCII sparkline of the series, useful for showing
    /// demand curves (Figure 1) in terminal output.
    pub fn sparkline(&self) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let lo = self.min();
        let hi = self.max();
        let span = if (hi - lo).abs() < f64::EPSILON {
            1.0
        } else {
            hi - lo
        };
        self.values
            .iter()
            .map(|&v| {
                let t = ((v - lo) / span * 7.0).round() as usize;
                BARS[t.min(7)]
            })
            .collect()
    }
}

impl Index<usize> for Series {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.values[i]
    }
}

impl Add<&Series> for &Series {
    type Output = Series;
    /// # Panics
    ///
    /// Panics if the axes differ.
    fn add(self, rhs: &Series) -> Series {
        self.zip_with(rhs, |a, b| a + b)
            .expect("series axes must match for +")
    }
}

impl Sub<&Series> for &Series {
    type Output = Series;
    /// # Panics
    ///
    /// Panics if the axes differ.
    fn sub(self, rhs: &Series) -> Series {
        self.zip_with(rhs, |a, b| a - b)
            .expect("series axes must match for -")
    }
}

impl Mul<f64> for &Series {
    type Output = Series;
    fn mul(self, rhs: f64) -> Series {
        self.scale(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeAxis;

    fn axis() -> TimeAxis {
        TimeAxis::hourly()
    }

    #[test]
    fn construction_and_len() {
        let s = Series::zeros(axis());
        assert_eq!(s.len(), 24);
        assert!(!s.is_empty());
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match axis")]
    fn wrong_length_panics() {
        let _ = Series::from_values(axis(), vec![1.0; 10]);
    }

    #[test]
    fn from_fn_midpoints() {
        let s = Series::from_fn(axis(), |t| t);
        // First slot midpoint is 0.5/24, last is 23.5/24.
        assert!((s[0] - 0.5 / 24.0).abs() < 1e-12);
        assert!((s[23] - 23.5 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn stats() {
        let mut v = vec![1.0; 24];
        v[18] = 5.0;
        let s = Series::from_values(axis(), v);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.argmax(), 18);
        assert!((s.mean() - (23.0 + 5.0) / 24.0).abs() < 1e-12);
    }

    #[test]
    fn sum_over_clips() {
        let s = Series::constant(axis(), 2.0);
        assert_eq!(s.sum_over(Interval::new(0, 12)), 24.0);
        assert_eq!(s.sum_over(Interval::new(20, 100)), 8.0);
    }

    #[test]
    fn map_scale_zip() {
        let a = Series::constant(axis(), 2.0);
        let b = Series::constant(axis(), 3.0);
        assert_eq!(a.scale(2.0).sum(), 96.0);
        let c = a.zip_with(&b, |x, y| x * y).unwrap();
        assert_eq!(c[0], 6.0);
        let d = &a + &b;
        assert_eq!(d.sum(), 120.0);
        let e = &b - &a;
        assert_eq!(e[5], 1.0);
        let f = &a * 0.5;
        assert_eq!(f[0], 1.0);
    }

    #[test]
    fn axis_mismatch_error() {
        let a = Series::zeros(TimeAxis::hourly());
        let b = Series::zeros(TimeAxis::quarter_hourly());
        let err = a.zip_with(&b, |x, _| x).unwrap_err();
        assert!(err.to_string().contains("60-minute"));
    }

    #[test]
    fn accumulate_adds() {
        let mut a = Series::constant(axis(), 1.0);
        let b = Series::constant(axis(), 2.0);
        a.accumulate(&b);
        assert_eq!(a.sum(), 72.0);
    }

    #[test]
    #[should_panic(expected = "argmax of empty series")]
    fn argmax_of_empty_series_panics() {
        // An empty series is unconstructible through the public API
        // (`from_values` validates the length), but deserialization and
        // future constructors must still get a clear panic rather than a
        // silent out-of-range index 0.
        let empty = Series {
            axis: axis(),
            values: Vec::new(),
        };
        let _ = empty.argmax();
    }

    #[test]
    fn smoothing_windows_saturate_at_edges() {
        // First slot's window is [0, half] — never wrapping to the end of
        // the day. With a spike at the last slot, the first slot must
        // stay untouched.
        let mut v = vec![0.0; 24];
        v[23] = 12.0;
        let s = Series::from_values(axis(), v);
        let sm = s.smooth(2);
        assert_eq!(sm[0], 0.0, "no wrap-around from the end of the day");
        // The edge slot averages over its truncated window [21, 23] and
        // is divided by that window's own length (3, not 5).
        assert!((sm[23] - 4.0).abs() < 1e-12);
        assert!((sm[21] - 12.0 / 5.0).abs() < 1e-12);
        assert_eq!(sm[20], 0.0);
    }

    #[test]
    fn smoothing_preserves_constant() {
        let s = Series::constant(axis(), 3.0);
        let sm = s.smooth(2);
        for i in 0..24 {
            assert!((sm[i] - 3.0).abs() < 1e-12);
        }
        assert_eq!(s.smooth(0), s);
    }

    #[test]
    fn smoothing_reduces_peak() {
        let mut v = vec![0.0; 24];
        v[12] = 10.0;
        let s = Series::from_values(axis(), v);
        let sm = s.smooth(1);
        assert!(sm[12] < 10.0);
        assert!(sm[11] > 0.0);
        // Smoothing conserves mass away from boundaries.
        assert!((sm.sum() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn energy_interpretation() {
        let s = Series::constant(axis(), 1.5);
        assert_eq!(s.total(), KilowattHours(36.0));
        assert_eq!(s.energy_over(Interval::new(0, 2)), KilowattHours(3.0));
    }

    #[test]
    fn sparkline_has_one_char_per_slot() {
        let s = Series::from_fn(axis(), |t| (t * std::f64::consts::TAU).sin());
        let line = s.sparkline();
        assert_eq!(line.chars().count(), 24);
    }
}
