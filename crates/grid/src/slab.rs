//! Struct-of-arrays population backend for city-scale simulation.
//!
//! The per-object backend ([`Household`] owning a `Vec<Device>`) is the
//! right shape for small scenario work, but a million households means a
//! million tiny heap trees and a pointer-chase per demand sweep. This
//! module stores the same population as one contiguous slab per field —
//! [`PopulationSlab`] — plus batched kernels that reuse the
//! [`DemandScratch`] duty-shape cache and stream fused multiply-add
//! passes over slices:
//!
//! * [`aggregate_demand_slab`] — one day of aggregate demand,
//! * [`interval_flexibility_slab`] — per-household `(usage, potential)`
//!   over a peak interval (the scenario-derivation hot path, swept over
//!   the clipped interval only),
//! * [`saving_potential_slab`] — aggregate shed capacity over an
//!   interval.
//!
//! Every kernel is **byte-identical** to folding the corresponding
//! per-object [`Household`] call over the same population: same
//! per-household jitter stream, same left-associated multiplications,
//! same accumulation order (per-device, then per-household, then
//! grand). This is pinned by proptests in `tests/slab_properties.rs`,
//! so campaigns may switch backends (via [`PopulationRef`]) without
//! re-blessing a single golden report.
//!
//! Shards for fleet work come from [`PopulationSlab::shards`]: borrowed
//! [`SlabView`]s over contiguous household ranges, no copying.

use crate::demand::DemandCurve;
use crate::device::DeviceKind;
use crate::household::{shape_of, standard_devices, DemandScratch, Household, HouseholdId};
use crate::series::Series;
use crate::time::{Interval, TimeAxis};
use crate::units::KilowattHours;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The position of `kind` in [`DeviceKind::all`] — the slab's per-entry
/// kind encoding.
fn kind_pos(kind: DeviceKind) -> u8 {
    DeviceKind::all()
        .iter()
        .position(|k| *k == kind)
        .expect("every kind appears in DeviceKind::all()") as u8
}

/// A population stored as struct-of-arrays: one contiguous array per
/// field, households delimited by entry offsets.
///
/// Field values are bit-for-bit those of the object backend —
/// [`PopulationBuilder::build_slab`](crate::population::PopulationBuilder::build_slab)
/// and [`PopulationSlab::from_households`] produce identical slabs for
/// the same seed.
///
/// # Example
///
/// ```
/// use powergrid::population::PopulationBuilder;
/// use powergrid::slab::PopulationSlab;
///
/// let builder = PopulationBuilder::new().households(40);
/// let slab = builder.build_slab(42);
/// assert_eq!(slab.len(), 40);
/// assert_eq!(slab, PopulationSlab::from_households(&builder.build(42)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationSlab {
    /// Raw household ids, in population order.
    ids: Vec<u64>,
    /// Occupants per household.
    occupants: Vec<u32>,
    /// Usage-intensity multiplier per household.
    intensity: Vec<f64>,
    /// Contracted daily allowance (kWh) per household.
    allowed_use: Vec<f64>,
    /// Device-entry ranges: household `h` owns entries
    /// `offsets[h]..offsets[h + 1]`. Always `len() + 1` long.
    offsets: Vec<u32>,
    /// Per-entry device kind, as an index into [`DeviceKind::all`].
    /// Entries keep each household's device-list order — the jitter
    /// stream draws one value per entry in this order.
    kind_index: Vec<u8>,
    /// Per-entry rated power (kW).
    rated_power: Vec<f64>,
    /// Per-entry shedable fraction, in `[0, 1]`.
    flexibility: Vec<f64>,
}

impl PopulationSlab {
    /// An empty slab.
    pub fn new() -> PopulationSlab {
        PopulationSlab::with_capacity(0)
    }

    /// An empty slab with room for `households` standard households.
    pub fn with_capacity(households: usize) -> PopulationSlab {
        let mut offsets = Vec::with_capacity(households + 1);
        offsets.push(0);
        PopulationSlab {
            ids: Vec::with_capacity(households),
            occupants: Vec::with_capacity(households),
            intensity: Vec::with_capacity(households),
            allowed_use: Vec::with_capacity(households),
            offsets,
            // Standard households own 7 or 8 devices.
            kind_index: Vec::with_capacity(households * 8),
            rated_power: Vec::with_capacity(households * 8),
            flexibility: Vec::with_capacity(households * 8),
        }
    }

    /// Converts an object population, preserving household and
    /// device-list order (and therefore the jitter stream).
    pub fn from_households(households: &[Household]) -> PopulationSlab {
        let mut slab = PopulationSlab::with_capacity(households.len());
        for h in households {
            slab.push(h);
        }
        slab
    }

    /// Appends one object household.
    pub fn push(&mut self, h: &Household) {
        self.ids.push(h.id().0);
        self.occupants.push(h.occupants());
        self.intensity.push(h.intensity());
        self.allowed_use.push(h.allowed_use().value());
        for dev in h.devices() {
            self.kind_index.push(kind_pos(dev.kind()));
            self.rated_power.push(dev.rated_power().value());
            self.flexibility.push(dev.flexibility().value());
        }
        self.offsets.push(self.kind_index.len() as u32);
    }

    /// Appends a standard household of `occupants` without materialising
    /// a [`Household`]: same field values as pushing
    /// [`Household::standard`], no per-household heap tree.
    pub(crate) fn push_standard(&mut self, id: HouseholdId, occupants: u32) {
        let occupants = occupants.max(1);
        self.ids.push(id.0);
        self.occupants.push(occupants);
        // Field formulas mirror `Household::standard`; pinned equal by
        // the `build_slab` == `from_households(build)` tests.
        self.intensity.push(0.6 + 0.2 * f64::from(occupants));
        self.allowed_use.push(18.0 + 9.0 * f64::from(occupants));
        for dev in standard_devices(occupants) {
            self.kind_index.push(kind_pos(dev.kind()));
            self.rated_power.push(dev.rated_power().value());
            self.flexibility.push(dev.flexibility().value());
        }
        self.offsets.push(self.kind_index.len() as u32);
    }

    /// Number of households.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the slab holds no households.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of device entries across all households.
    pub fn device_entries(&self) -> usize {
        self.kind_index.len()
    }

    /// Heap bytes retained by the slab's arrays (capacity, not length) —
    /// the footprint figure E20 reports against the object backend.
    pub fn retained_bytes(&self) -> usize {
        use std::mem::size_of;
        self.ids.capacity() * size_of::<u64>()
            + self.occupants.capacity() * size_of::<u32>()
            + self.intensity.capacity() * size_of::<f64>()
            + self.allowed_use.capacity() * size_of::<f64>()
            + self.offsets.capacity() * size_of::<u32>()
            + self.kind_index.capacity() * size_of::<u8>()
            + self.rated_power.capacity() * size_of::<f64>()
            + self.flexibility.capacity() * size_of::<f64>()
    }

    /// A borrowed view of the whole population.
    pub fn view(&self) -> SlabView<'_> {
        SlabView {
            slab: self,
            start: 0,
            end: self.len(),
        }
    }

    /// A borrowed view of households `start..end` (population order).
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > len()`.
    pub fn view_range(&self, start: usize, end: usize) -> SlabView<'_> {
        assert!(
            start <= end && end <= self.len(),
            "view {start}..{end} out of range for {} households",
            self.len()
        );
        SlabView {
            slab: self,
            start,
            end,
        }
    }

    /// Splits the population into `parts` contiguous shards (sizes
    /// differing by at most one, earlier shards larger) — zero-copy
    /// cells for a fleet. Households keep their global ids, so a
    /// sharded season's jitter streams match the unsharded ones.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    pub fn shards(&self, parts: usize) -> Vec<SlabView<'_>> {
        assert!(parts > 0, "cannot shard into zero parts");
        let n = self.len();
        let base = n / parts;
        let extra = n % parts;
        let mut start = 0;
        (0..parts)
            .map(|p| {
                let size = base + usize::from(p < extra);
                let view = self.view_range(start, start + size);
                start += size;
                view
            })
            .collect()
    }
}

impl Default for PopulationSlab {
    fn default() -> Self {
        PopulationSlab::new()
    }
}

/// A borrowed contiguous household range of a [`PopulationSlab`] —
/// what kernels and fleet cells operate on. `Copy`, so passing one
/// around costs nothing.
#[derive(Debug, Clone, Copy)]
pub struct SlabView<'a> {
    slab: &'a PopulationSlab,
    start: usize,
    end: usize,
}

impl<'a> SlabView<'a> {
    /// Number of households in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view holds no households.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The id of the view's `i`-th household.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn id(&self, i: usize) -> HouseholdId {
        HouseholdId(self.slab.ids[self.index(i)])
    }

    /// Occupants of the view's `i`-th household.
    pub fn occupants(&self, i: usize) -> u32 {
        self.slab.occupants[self.index(i)]
    }

    /// Contracted daily allowance of the view's `i`-th household.
    pub fn allowed_use(&self, i: usize) -> KilowattHours {
        KilowattHours(self.slab.allowed_use[self.index(i)])
    }

    /// Usage-intensity multiplier of the view's `i`-th household.
    pub fn intensity(&self, i: usize) -> f64 {
        self.slab.intensity[self.index(i)]
    }

    fn index(&self, i: usize) -> usize {
        assert!(
            i < self.len(),
            "household {i} out of view of {}",
            self.len()
        );
        self.start + i
    }
}

/// A population behind either backend, passed by value through the
/// scenario/campaign/fleet layers. Both arms negotiate byte-identically;
/// pick [`PopulationRef::Slab`] when the population is large enough for
/// allocation and cache behaviour to matter.
#[derive(Debug, Clone, Copy)]
pub enum PopulationRef<'a> {
    /// The per-object backend: a slice of [`Household`]s.
    Objects(&'a [Household]),
    /// The struct-of-arrays backend: a [`SlabView`].
    Slab(SlabView<'a>),
}

impl<'a> PopulationRef<'a> {
    /// Number of households.
    pub fn len(&self) -> usize {
        match self {
            PopulationRef::Objects(hs) => hs.len(),
            PopulationRef::Slab(view) => view.len(),
        }
    }

    /// True if the population is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Contracted daily allowance of the `i`-th household.
    pub fn allowed_use(&self, i: usize) -> KilowattHours {
        match self {
            PopulationRef::Objects(hs) => hs[i].allowed_use(),
            PopulationRef::Slab(view) => view.allowed_use(i),
        }
    }

    /// `(usage, potential)` over `interval` for every household, in
    /// population order, delivered as `sink(index, usage, potential)` —
    /// the backend-dispatched form of
    /// [`Household::interval_flexibility_with`]. Byte-identical across
    /// backends.
    pub fn interval_flexibility_for_each(
        &self,
        axis: &TimeAxis,
        mean_temp: f64,
        seed: u64,
        interval: Interval,
        scratch: &mut DemandScratch,
        mut sink: impl FnMut(usize, KilowattHours, KilowattHours),
    ) {
        match self {
            PopulationRef::Objects(hs) => {
                for (i, h) in hs.iter().enumerate() {
                    let (usage, potential) =
                        h.interval_flexibility_with(axis, mean_temp, seed, interval, scratch);
                    sink(i, usage, potential);
                }
            }
            PopulationRef::Slab(view) => {
                interval_flexibility_slab(*view, axis, mean_temp, seed, interval, scratch, sink);
            }
        }
    }
}

impl<'a> From<&'a [Household]> for PopulationRef<'a> {
    fn from(households: &'a [Household]) -> PopulationRef<'a> {
        PopulationRef::Objects(households)
    }
}

impl<'a> From<&'a Vec<Household>> for PopulationRef<'a> {
    fn from(households: &'a Vec<Household>) -> PopulationRef<'a> {
        PopulationRef::Objects(households)
    }
}

impl<'a> From<SlabView<'a>> for PopulationRef<'a> {
    fn from(view: SlabView<'a>) -> PopulationRef<'a> {
        PopulationRef::Slab(view)
    }
}

/// Per-kernel-call tables: one temperature factor and one cached duty
/// shape per device kind, so the per-entry loop is pure arithmetic.
struct KindTables<'s> {
    temp_factor: [f64; 8],
    shapes: [&'s [f64]; 8],
}

/// Prefetches every kind's duty shape into the scratch cache (values
/// are pure functions of `(kind, resolution)`, so warming the cache
/// never changes any output) and snapshots the per-kind temperature
/// factors exactly as [`Device::load_profile_from_shape`] computes
/// them.
///
/// [`Device::load_profile_from_shape`]: crate::device::Device::load_profile_from_shape
fn kind_tables(
    shapes: &mut Vec<(DeviceKind, Vec<f64>)>,
    mean_temp: f64,
    n: usize,
) -> KindTables<'_> {
    for kind in DeviceKind::all() {
        let _ = shape_of(shapes, kind, n);
    }
    let shapes = &*shapes;
    let mut tables = KindTables {
        temp_factor: [1.0; 8],
        shapes: [&[]; 8],
    };
    for (k, kind) in DeviceKind::all().into_iter().enumerate() {
        tables.temp_factor[k] = if kind.is_temperature_sensitive() {
            1.0f64.max(1.0 + 0.045 * (16.0 - mean_temp))
        } else {
            1.0
        };
        let pos = shapes
            .iter()
            .position(|(cached, _)| *cached == kind)
            .expect("shape prefetched above");
        tables.shapes[k] = &shapes[pos].1[..n];
    }
    tables
}

/// The per-household jitter RNG — the same stream
/// [`Household::demand_profile_into`] seeds.
fn household_rng(seed: u64, id: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(id))
}

/// One day of aggregate demand over a slab view — the batched form of
/// [`aggregate_demand`](crate::demand::aggregate_demand), byte-identical
/// to it on the same population.
pub fn aggregate_demand_slab(
    view: SlabView<'_>,
    weather: &Series,
    axis: &TimeAxis,
    seed: u64,
) -> DemandCurve {
    let mut scratch = DemandScratch::new(axis);
    aggregate_demand_slab_with(view, weather, axis, seed, &mut scratch)
}

/// [`aggregate_demand_slab`] against a reusable [`DemandScratch`] (for
/// its duty-shape cache and per-household accumulator) — the form day
/// loops call so repeated days allocate only their output curve.
pub fn aggregate_demand_slab_with(
    view: SlabView<'_>,
    weather: &Series,
    axis: &TimeAxis,
    seed: u64,
    scratch: &mut DemandScratch,
) -> DemandCurve {
    let mean_temp = weather.mean();
    let n = axis.slots_per_day();
    scratch.ensure(n);
    let mut grand = Series::zeros(*axis);
    let out = grand.values_mut();
    let slot_hours = axis.slot_hours();
    let DemandScratch { device, shapes, .. } = scratch;
    let tables = kind_tables(shapes, mean_temp, n);
    let slab = view.slab;
    // The register-blocked sweep: the household's slot totals live in a
    // stack block while every device entry accumulates into it, instead
    // of round-tripping a heap buffer through store-to-load forwarding
    // once per entry per slot. Each block slot sees the same additions
    // in the same (device-list) order as the object path, so the totals
    // are bit-for-bit identical; only then does the block fold into the
    // grand curve, household by household, exactly like
    // `aggregate_demand` (f64 addition is not associative, so the
    // two-level order is load-bearing).
    const BLOCK: usize = 32;
    for h in view.start..view.end {
        let mut rng = household_rng(seed, slab.ids[h]);
        let intensity = slab.intensity[h];
        let entries = slab.offsets[h] as usize..slab.offsets[h + 1] as usize;
        let k = entries.len();
        if device.len() < k {
            device.resize(k, 0.0);
        }
        // One jitter draw per entry in device-list order — the stream
        // never interleaves with the slot math, so hoisting the power
        // computation out of the sweep changes no value.
        for (j, e) in entries.clone().enumerate() {
            let jitter = rng.gen_range(0.85..1.15);
            // Left-associated exactly as the object path: rated *
            // (household intensity * jitter), then * temp factor.
            device[j] = slab.rated_power[e]
                * (intensity * jitter)
                * tables.temp_factor[slab.kind_index[e] as usize];
        }
        let powers = &device[..k];
        let kinds = &slab.kind_index[entries];
        let mut s = 0;
        while s + BLOCK <= n {
            let mut acc = [0.0f64; BLOCK];
            for (&power, &kind) in powers.iter().zip(kinds) {
                let shape = &tables.shapes[kind as usize][s..s + BLOCK];
                for (slot, &duty) in acc.iter_mut().zip(shape) {
                    *slot += (power * duty) * slot_hours;
                }
            }
            for (g, &t) in out[s..s + BLOCK].iter_mut().zip(acc.iter()) {
                *g += t;
            }
            s += BLOCK;
        }
        // Scalar tail for axes whose day length is not a block multiple.
        while s < n {
            let mut acc = 0.0;
            for (&power, &kind) in powers.iter().zip(kinds) {
                acc += (power * tables.shapes[kind as usize][s]) * slot_hours;
            }
            out[s] += acc;
            s += 1;
        }
    }
    DemandCurve::new(grand)
}

/// `(usage, potential)` over `interval` for every household of the
/// view, in order, delivered as `sink(index, usage, potential)` — the
/// batched form of [`Household::interval_flexibility_with`],
/// byte-identical to calling it per household.
///
/// Only the interval's slots are swept (the outputs never read the
/// rest of the day), so scenario derivation over a 2-hour peak does a
/// twelfth of the full-day work.
pub fn interval_flexibility_slab(
    view: SlabView<'_>,
    axis: &TimeAxis,
    mean_temp: f64,
    seed: u64,
    interval: Interval,
    scratch: &mut DemandScratch,
    mut sink: impl FnMut(usize, KilowattHours, KilowattHours),
) {
    let n = axis.slots_per_day();
    scratch.ensure(n);
    let slot_hours = axis.slot_hours();
    let clipped = interval.intersect(Interval::new(0, n));
    // An interval entirely beyond the day clips to an empty range whose
    // bounds still sit past `n`; clamp so the slices stay in range.
    let (lo, hi) = (clipped.start().min(n), clipped.end().min(n));
    let DemandScratch { total, shapes, .. } = scratch;
    let tables = kind_tables(shapes, mean_temp, n);
    let slab = view.slab;
    let house = &mut total[lo..hi];
    for (local, h) in (view.start..view.end).enumerate() {
        let mut rng = household_rng(seed, slab.ids[h]);
        let intensity = slab.intensity[h];
        house.fill(0.0);
        let mut potential = KilowattHours::ZERO;
        for e in slab.offsets[h] as usize..slab.offsets[h + 1] as usize {
            let jitter = rng.gen_range(0.85..1.15);
            let kind = slab.kind_index[e] as usize;
            let power = slab.rated_power[e] * (intensity * jitter) * tables.temp_factor[kind];
            let shape = &tables.shapes[kind][lo..hi];
            // One fused pass per entry: the object path materialises the
            // device profile once and reads it twice (potential, then
            // total); the load value and both accumulation orders are
            // bit-for-bit the same.
            let mut entry_sum = 0.0;
            for (slot, &duty) in house.iter_mut().zip(shape) {
                let load = (power * duty) * slot_hours;
                entry_sum += load;
                *slot += load;
            }
            potential += KilowattHours(slab.flexibility[e] * entry_sum);
        }
        let usage = KilowattHours(house.iter().sum());
        sink(local, usage, potential);
    }
}

/// Aggregate energy the viewed households could shed over `interval` —
/// the batched form of summing [`Household::saving_potential`] in
/// population order.
pub fn saving_potential_slab(
    view: SlabView<'_>,
    axis: &TimeAxis,
    mean_temp: f64,
    seed: u64,
    interval: Interval,
    scratch: &mut DemandScratch,
) -> KilowattHours {
    let mut acc = KilowattHours::ZERO;
    interval_flexibility_slab(view, axis, mean_temp, seed, interval, scratch, |_, _, p| {
        acc += p;
    });
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::aggregate_demand;
    use crate::population::PopulationBuilder;
    use crate::time::TimeOfDay;
    use crate::weather::WeatherModel;

    fn axis() -> TimeAxis {
        TimeAxis::quarter_hourly()
    }

    fn evening(axis: TimeAxis) -> Interval {
        axis.between(TimeOfDay::hm(17, 0).unwrap(), TimeOfDay::hm(21, 0).unwrap())
    }

    #[test]
    fn from_households_preserves_every_field() {
        let homes = PopulationBuilder::new().households(25).build(9);
        let slab = PopulationSlab::from_households(&homes);
        assert_eq!(slab.len(), homes.len());
        let view = slab.view();
        for (i, h) in homes.iter().enumerate() {
            assert_eq!(view.id(i), h.id());
            assert_eq!(view.occupants(i), h.occupants());
            assert_eq!(view.intensity(i).to_bits(), h.intensity().to_bits());
            assert_eq!(view.allowed_use(i), h.allowed_use());
        }
        assert_eq!(
            slab.device_entries(),
            homes.iter().map(|h| h.devices().len()).sum::<usize>()
        );
    }

    #[test]
    fn aggregate_demand_matches_object_backend_bit_for_bit() {
        let homes = PopulationBuilder::new().households(60).build(3);
        let slab = PopulationSlab::from_households(&homes);
        let weather = WeatherModel::winter().temperatures(&axis(), 3);
        let object = aggregate_demand(&homes, &weather, &axis(), 3);
        let batched = aggregate_demand_slab(slab.view(), &weather, &axis(), 3);
        assert_eq!(object, batched);
    }

    #[test]
    fn interval_flexibility_matches_object_backend_bit_for_bit() {
        let homes = PopulationBuilder::new().households(40).build(11);
        let slab = PopulationSlab::from_households(&homes);
        let iv = evening(axis());
        let mut scratch = DemandScratch::new(&axis());
        let mut got = Vec::new();
        interval_flexibility_slab(
            slab.view(),
            &axis(),
            -6.0,
            5,
            iv,
            &mut scratch,
            |i, u, p| got.push((i, u, p)),
        );
        assert_eq!(got.len(), homes.len());
        for (h, (i, usage, potential)) in homes.iter().zip(&got) {
            assert_eq!(homes[*i].id(), h.id());
            let expect = h.interval_flexibility(&axis(), -6.0, 5, iv);
            assert_eq!((*usage, *potential), expect);
        }
    }

    #[test]
    fn saving_potential_matches_object_fold() {
        let homes = PopulationBuilder::new().households(30).build(7);
        let slab = PopulationSlab::from_households(&homes);
        let iv = evening(axis());
        let mut scratch = DemandScratch::new(&axis());
        let batched = saving_potential_slab(slab.view(), &axis(), -4.0, 7, iv, &mut scratch);
        let mut object = KilowattHours::ZERO;
        for h in &homes {
            object += h.saving_potential(&axis(), -4.0, 7, iv);
        }
        assert_eq!(batched, object);
    }

    #[test]
    fn shards_partition_without_copying() {
        let slab = PopulationBuilder::new().households(23).build(1).pipe_slab();
        let shards = slab.shards(4);
        assert_eq!(shards.len(), 4);
        assert_eq!(shards.iter().map(SlabView::len).sum::<usize>(), 23);
        // Sizes differ by at most one, earlier shards larger.
        assert_eq!(
            shards.iter().map(SlabView::len).collect::<Vec<_>>(),
            vec![6, 6, 6, 5]
        );
        // Global ids survive sharding.
        assert_eq!(shards[1].id(0), HouseholdId(6));
    }

    #[test]
    fn sharded_demand_sums_to_whole_population_demand() {
        let homes = PopulationBuilder::new().households(50).build(2);
        let slab = PopulationSlab::from_households(&homes);
        let weather = WeatherModel::winter().temperatures(&axis(), 2);
        let whole = aggregate_demand_slab(slab.view(), &weather, &axis(), 2);
        let total: f64 = slab
            .shards(3)
            .into_iter()
            .map(|shard| {
                aggregate_demand_slab(shard, &weather, &axis(), 2)
                    .total()
                    .value()
            })
            .sum();
        assert!((whole.total().value() - total).abs() < 1e-9);
    }

    #[test]
    fn empty_interval_yields_zero_flexibility() {
        let slab = PopulationBuilder::new().households(5).build(1).pipe_slab();
        let mut scratch = DemandScratch::new(&axis());
        let p = saving_potential_slab(
            slab.view(),
            &axis(),
            -4.0,
            1,
            Interval::new(10, 10),
            &mut scratch,
        );
        assert_eq!(p, KilowattHours::ZERO);
    }

    #[test]
    fn interval_entirely_beyond_the_day_yields_zero_flexibility() {
        // Regression: such an interval clips to an empty range whose
        // bounds still sit past the day length — the sweep must treat
        // it as empty rather than slice out of bounds.
        let slab = PopulationBuilder::new().households(5).build(1).pipe_slab();
        let n = axis().slots_per_day();
        let mut scratch = DemandScratch::new(&axis());
        let p = saving_potential_slab(
            slab.view(),
            &axis(),
            -4.0,
            1,
            Interval::new(n + 3, n + 9),
            &mut scratch,
        );
        assert_eq!(p, KilowattHours::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn view_range_bounds_checked() {
        let slab = PopulationBuilder::new().households(5).build(1).pipe_slab();
        let _ = slab.view_range(2, 6);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_shards_panics() {
        let slab = PopulationSlab::new();
        let _ = slab.shards(0);
    }

    /// Test-local convenience: object population → slab.
    trait PipeSlab {
        fn pipe_slab(&self) -> PopulationSlab;
    }
    impl PipeSlab for Vec<Household> {
        fn pipe_slab(&self) -> PopulationSlab {
            PopulationSlab::from_households(self)
        }
    }
}
