//! The lower/normal/higher price scheme of Section 3.2.
//!
//! All three announcement methods share a three-level price structure:
//! customers that cooperate pay the *lower* price for their reduced
//! consumption, the *higher* price for consumption beyond the agreed
//! amount, and non-participants pay the *normal* price. "Customer Agents
//! know the values for the lower, normal and higher prices."

use crate::units::{KilowattHours, Money, PricePerKwh};
use serde::{Deserialize, Serialize};

/// Three-level electricity tariff.
///
/// # Example
///
/// ```
/// use powergrid::tariff::Tariff;
/// use powergrid::units::KilowattHours;
///
/// let t = Tariff::default_scheme();
/// // A customer that promised to stay within 8 kWh but used 10 pays the
/// // lower price for 8 and the higher price for the 2 kWh excess.
/// let bill = t.bill_with_limit(KilowattHours(10.0), KilowattHours(8.0));
/// let flat = t.bill_normal(KilowattHours(10.0));
/// assert!(bill.value() < flat.value()); // cooperation still paid off here
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tariff {
    lower: PricePerKwh,
    normal: PricePerKwh,
    higher: PricePerKwh,
}

impl Tariff {
    /// Creates a tariff.
    ///
    /// # Panics
    ///
    /// Panics unless `lower <= normal <= higher` and all are non-negative.
    pub fn new(lower: PricePerKwh, normal: PricePerKwh, higher: PricePerKwh) -> Tariff {
        assert!(lower.value() >= 0.0, "prices must be non-negative");
        assert!(
            lower <= normal && normal <= higher,
            "tariff must satisfy lower ≤ normal ≤ higher, got {lower} / {normal} / {higher}"
        );
        Tariff {
            lower,
            normal,
            higher,
        }
    }

    /// The default scheme used in the experiments (0.6 / 1.0 / 1.8).
    pub fn default_scheme() -> Tariff {
        Tariff::new(PricePerKwh(0.6), PricePerKwh(1.0), PricePerKwh(1.8))
    }

    /// Lower (reward) price.
    pub fn lower(&self) -> PricePerKwh {
        self.lower
    }

    /// Normal price.
    pub fn normal(&self) -> PricePerKwh {
        self.normal
    }

    /// Higher (penalty) price.
    pub fn higher(&self) -> PricePerKwh {
        self.higher
    }

    /// Bill at the normal price (non-participants; "if they say 'no', they
    /// pay the normal electricity price in the peak period").
    pub fn bill_normal(&self, used: KilowattHours) -> Money {
        used.clamp_non_negative() * self.normal
    }

    /// Bill for a participant with an agreed limit: lower price up to the
    /// limit, higher price beyond it (the offer and request-for-bids
    /// settlement rule of §3.2.1–3.2.2).
    pub fn bill_with_limit(&self, used: KilowattHours, limit: KilowattHours) -> Money {
        let used = used.clamp_non_negative();
        let limit = limit.clamp_non_negative();
        let within = used.min(limit);
        let excess = (used - within).clamp_non_negative();
        within * self.lower + excess * self.higher
    }

    /// The usage level below which accepting a limit beats paying the
    /// normal price, for a fixed limit: solves
    /// `lower·limit + higher·(u − limit) = normal·u` for `u`.
    ///
    /// Returns `None` when `higher == normal` (accepting then always wins
    /// or ties below the limit).
    pub fn break_even_usage(&self, limit: KilowattHours) -> Option<KilowattHours> {
        let h = self.higher.value();
        let n = self.normal.value();
        if (h - n).abs() <= f64::EPSILON {
            return None;
        }
        let l = self.lower.value();
        Some(KilowattHours(limit.value() * (h - l) / (h - n)))
    }
}

impl Default for Tariff {
    fn default() -> Self {
        Tariff::default_scheme()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_enforced() {
        assert!(std::panic::catch_unwind(|| {
            Tariff::new(PricePerKwh(1.0), PricePerKwh(0.5), PricePerKwh(2.0))
        })
        .is_err());
    }

    #[test]
    fn normal_bill_is_linear() {
        let t = Tariff::default_scheme();
        assert_eq!(t.bill_normal(KilowattHours(10.0)), Money(10.0));
        assert_eq!(t.bill_normal(KilowattHours(-3.0)), Money::ZERO);
    }

    #[test]
    fn within_limit_pays_lower_price() {
        let t = Tariff::default_scheme();
        let bill = t.bill_with_limit(KilowattHours(8.0), KilowattHours(10.0));
        assert_eq!(bill, Money(8.0 * 0.6));
    }

    #[test]
    fn excess_pays_higher_price() {
        let t = Tariff::default_scheme();
        let bill = t.bill_with_limit(KilowattHours(12.0), KilowattHours(10.0));
        assert!((bill.value() - (10.0 * 0.6 + 2.0 * 1.8)).abs() < 1e-12);
    }

    #[test]
    fn cooperation_wins_for_moderate_overuse_only() {
        let t = Tariff::default_scheme();
        let limit = KilowattHours(10.0);
        // Slight overuse: still cheaper than normal.
        let slight = t.bill_with_limit(KilowattHours(11.0), limit);
        assert!(slight < t.bill_normal(KilowattHours(11.0)));
        // Heavy overuse: worse than normal.
        let heavy = t.bill_with_limit(KilowattHours(30.0), limit);
        assert!(heavy > t.bill_normal(KilowattHours(30.0)));
    }

    #[test]
    fn break_even_matches_bills() {
        let t = Tariff::default_scheme();
        let limit = KilowattHours(10.0);
        let u = t.break_even_usage(limit).unwrap();
        let a = t.bill_with_limit(u, limit);
        let b = t.bill_normal(u);
        assert!(
            (a.value() - b.value()).abs() < 1e-9,
            "bills at break-even differ"
        );
    }

    #[test]
    fn break_even_none_when_flat() {
        let t = Tariff::new(PricePerKwh(0.5), PricePerKwh(1.0), PricePerKwh(1.0));
        assert!(t.break_even_usage(KilowattHours(10.0)).is_none());
    }

    #[test]
    fn accessors() {
        let t = Tariff::default_scheme();
        assert!(t.lower() < t.normal());
        assert!(t.normal() < t.higher());
    }
}
