//! Discretised daily time axis, times of day and half-open intervals.
//!
//! The paper's reward tables carry "a time interval" during which cut-downs
//! apply. We model one day at a configurable slot resolution (15 minutes by
//! default), which is the resolution at which demand curves and predictions
//! operate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Minutes in one day.
pub const MINUTES_PER_DAY: u32 = 24 * 60;

/// A wall-clock time of day with minute resolution.
///
/// # Example
///
/// ```
/// use powergrid::time::TimeOfDay;
///
/// let t = TimeOfDay::hm(18, 30).unwrap();
/// assert_eq!(t.hour(), 18);
/// assert_eq!(t.minute(), 30);
/// assert_eq!(t.to_string(), "18:30");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimeOfDay {
    minutes: u32,
}

/// Error returned for out-of-range wall-clock components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidTimeError {
    /// Offending hour.
    pub hour: u32,
    /// Offending minute.
    pub minute: u32,
}

impl fmt::Display for InvalidTimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid time of day {:02}:{:02}", self.hour, self.minute)
    }
}

impl std::error::Error for InvalidTimeError {}

impl TimeOfDay {
    /// Midnight.
    pub const MIDNIGHT: TimeOfDay = TimeOfDay { minutes: 0 };

    /// Creates a time of day from hour and minute.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTimeError`] if `hour >= 24` or `minute >= 60`.
    pub fn hm(hour: u32, minute: u32) -> Result<TimeOfDay, InvalidTimeError> {
        if hour >= 24 || minute >= 60 {
            Err(InvalidTimeError { hour, minute })
        } else {
            Ok(TimeOfDay {
                minutes: hour * 60 + minute,
            })
        }
    }

    /// Creates a time of day from minutes since midnight, wrapping at 24h.
    pub fn from_minutes(minutes: u32) -> TimeOfDay {
        TimeOfDay {
            minutes: minutes % MINUTES_PER_DAY,
        }
    }

    /// Minutes since midnight.
    pub fn minutes(self) -> u32 {
        self.minutes
    }

    /// Hour component (0–23).
    pub fn hour(self) -> u32 {
        self.minutes / 60
    }

    /// Minute component (0–59).
    pub fn minute(self) -> u32 {
        self.minutes % 60
    }

    /// Fraction of the day elapsed, in `[0, 1)`.
    pub fn day_fraction(self) -> f64 {
        f64::from(self.minutes) / f64::from(MINUTES_PER_DAY)
    }
}

impl fmt::Display for TimeOfDay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}:{:02}", self.hour(), self.minute())
    }
}

/// A uniform discretisation of one day into equal slots.
///
/// # Example
///
/// ```
/// use powergrid::time::{TimeAxis, TimeOfDay};
///
/// let axis = TimeAxis::quarter_hourly();
/// assert_eq!(axis.slots_per_day(), 96);
/// assert_eq!(axis.slot_of(TimeOfDay::hm(18, 20).unwrap()), 73);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeAxis {
    slot_minutes: u32,
}

impl TimeAxis {
    /// Creates an axis with the given slot length in minutes.
    ///
    /// # Panics
    ///
    /// Panics if `slot_minutes` is zero or does not evenly divide a day.
    pub fn new(slot_minutes: u32) -> TimeAxis {
        assert!(
            slot_minutes > 0 && MINUTES_PER_DAY.is_multiple_of(slot_minutes),
            "slot length {slot_minutes} must evenly divide {MINUTES_PER_DAY} minutes"
        );
        TimeAxis { slot_minutes }
    }

    /// 15-minute slots (96 per day) — the resolution used in experiments.
    pub fn quarter_hourly() -> TimeAxis {
        TimeAxis::new(15)
    }

    /// 60-minute slots (24 per day).
    pub fn hourly() -> TimeAxis {
        TimeAxis::new(60)
    }

    /// Slot length in minutes.
    pub fn slot_minutes(self) -> u32 {
        self.slot_minutes
    }

    /// Slot length in hours (e.g. `0.25` for quarter-hour slots).
    pub fn slot_hours(self) -> f64 {
        f64::from(self.slot_minutes) / 60.0
    }

    /// Number of slots in one day.
    pub fn slots_per_day(self) -> usize {
        (MINUTES_PER_DAY / self.slot_minutes) as usize
    }

    /// The slot index containing the given time of day.
    pub fn slot_of(self, t: TimeOfDay) -> usize {
        (t.minutes() / self.slot_minutes) as usize
    }

    /// The wall-clock start of slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for this axis.
    pub fn start_of(self, i: usize) -> TimeOfDay {
        assert!(i < self.slots_per_day(), "slot {i} out of range");
        TimeOfDay::from_minutes(i as u32 * self.slot_minutes)
    }

    /// The half-open interval covering the whole day.
    pub fn whole_day(self) -> Interval {
        Interval::new(0, self.slots_per_day())
    }

    /// Interval covering `[from, to)` in wall-clock time. If `to <= from`
    /// the interval is empty.
    pub fn between(self, from: TimeOfDay, to: TimeOfDay) -> Interval {
        let a = self.slot_of(from);
        let b = self.slot_of(to);
        Interval::new(a, b.max(a))
    }
}

impl Default for TimeAxis {
    fn default() -> Self {
        TimeAxis::quarter_hourly()
    }
}

/// A half-open range of slot indices `[start, end)`.
///
/// # Example
///
/// ```
/// use powergrid::time::Interval;
///
/// let i = Interval::new(72, 88);
/// assert_eq!(i.len(), 16);
/// assert!(i.contains(80));
/// assert!(!i.contains(88));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Interval {
    start: usize,
    end: usize,
}

impl Interval {
    /// Creates the interval `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: usize, end: usize) -> Interval {
        assert!(end >= start, "interval end {end} before start {start}");
        Interval { start, end }
    }

    /// Start slot (inclusive).
    pub fn start(self) -> usize {
        self.start
    }

    /// End slot (exclusive).
    pub fn end(self) -> usize {
        self.end
    }

    /// Number of slots covered.
    pub fn len(self) -> usize {
        self.end - self.start
    }

    /// True if the interval covers no slots.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// True if slot `i` lies inside the interval.
    pub fn contains(self, i: usize) -> bool {
        i >= self.start && i < self.end
    }

    /// Iterator over covered slot indices.
    pub fn iter(self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// The intersection of two intervals (possibly empty).
    pub fn intersect(self, other: Interval) -> Interval {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end).max(start);
        Interval { start, end }
    }

    /// Duration of this interval in hours on the given axis.
    pub fn hours(self, axis: TimeAxis) -> f64 {
        self.len() as f64 * axis.slot_hours()
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

impl IntoIterator for Interval {
    type Item = usize;
    type IntoIter = std::ops::Range<usize>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_of_day_construction() {
        assert!(TimeOfDay::hm(23, 59).is_ok());
        assert!(TimeOfDay::hm(24, 0).is_err());
        assert!(TimeOfDay::hm(0, 60).is_err());
        assert_eq!(TimeOfDay::hm(6, 30).unwrap().minutes(), 390);
    }

    #[test]
    fn time_of_day_wraps() {
        let t = TimeOfDay::from_minutes(MINUTES_PER_DAY + 30);
        assert_eq!(t, TimeOfDay::hm(0, 30).unwrap());
    }

    #[test]
    fn day_fraction() {
        assert_eq!(TimeOfDay::MIDNIGHT.day_fraction(), 0.0);
        assert_eq!(TimeOfDay::hm(12, 0).unwrap().day_fraction(), 0.5);
    }

    #[test]
    fn axis_slots() {
        let axis = TimeAxis::quarter_hourly();
        assert_eq!(axis.slots_per_day(), 96);
        assert_eq!(axis.slot_hours(), 0.25);
        assert_eq!(axis.slot_of(TimeOfDay::MIDNIGHT), 0);
        assert_eq!(axis.slot_of(TimeOfDay::hm(23, 59).unwrap()), 95);
        assert_eq!(axis.start_of(4), TimeOfDay::hm(1, 0).unwrap());
    }

    #[test]
    fn hourly_axis() {
        let axis = TimeAxis::hourly();
        assert_eq!(axis.slots_per_day(), 24);
        assert_eq!(axis.slot_of(TimeOfDay::hm(18, 45).unwrap()), 18);
    }

    #[test]
    #[should_panic(expected = "evenly divide")]
    fn axis_rejects_uneven_slots() {
        let _ = TimeAxis::new(7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn start_of_out_of_range_panics() {
        let axis = TimeAxis::hourly();
        let _ = axis.start_of(24);
    }

    #[test]
    fn interval_basics() {
        let i = Interval::new(10, 20);
        assert_eq!(i.len(), 10);
        assert!(!i.is_empty());
        assert!(i.contains(10));
        assert!(!i.contains(20));
        assert_eq!(i.iter().count(), 10);
    }

    #[test]
    fn interval_intersection() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 15);
        assert_eq!(a.intersect(b), Interval::new(5, 10));
        let c = Interval::new(12, 20);
        assert!(a.intersect(c).is_empty());
    }

    #[test]
    fn interval_hours() {
        let axis = TimeAxis::quarter_hourly();
        assert_eq!(Interval::new(0, 8).hours(axis), 2.0);
    }

    #[test]
    fn between_produces_expected_interval() {
        let axis = TimeAxis::quarter_hourly();
        let peak = axis.between(TimeOfDay::hm(18, 0).unwrap(), TimeOfDay::hm(20, 0).unwrap());
        assert_eq!(peak, Interval::new(72, 80));
        // Reversed bounds produce an empty interval rather than panicking.
        let empty = axis.between(TimeOfDay::hm(20, 0).unwrap(), TimeOfDay::hm(18, 0).unwrap());
        assert!(empty.is_empty());
    }

    #[test]
    fn interval_display() {
        assert_eq!(Interval::new(72, 80).to_string(), "[72, 80)");
    }
}
