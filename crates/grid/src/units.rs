//! Typed physical and economic quantities.
//!
//! Newtypes keep kilowatts, kilowatt-hours, money and fractions statically
//! distinct (C-NEWTYPE): a cut-down [`Fraction`] can never be added to an
//! energy amount by accident, and prices only multiply with energy.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Returns the raw value.
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Clamps negative values to zero.
            pub fn clamp_non_negative(self) -> $name {
                $name(self.0.max(0.0))
            }

            /// True if the value is finite (not NaN or infinite).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                // Fold from +0.0: `f64::sum` of an empty iterator is
                // -0.0, which leaks a spurious minus sign into reports.
                $name(iter.map(|q| q.0).fold(0.0, |a, b| a + b))
            }
        }
    };
}

quantity!(
    /// Electrical energy in kilowatt-hours.
    KilowattHours,
    "kWh"
);

quantity!(
    /// Electrical power in kilowatts.
    Kilowatts,
    "kW"
);

quantity!(
    /// An amount of money, in abstract currency units (the paper's rewards
    /// are unit-less numbers such as `17` and `24.8`).
    Money,
    "cr"
);

quantity!(
    /// A price per kilowatt-hour.
    PricePerKwh,
    "cr/kWh"
);

quantity!(
    /// A temperature in degrees Celsius.
    Celsius,
    "°C"
);

impl Kilowatts {
    /// Energy delivered by this power over `hours` hours.
    pub fn for_hours(self, hours: f64) -> KilowattHours {
        KilowattHours(self.0 * hours)
    }
}

impl KilowattHours {
    /// Average power when this energy is spread over `hours` hours.
    ///
    /// # Panics
    ///
    /// Panics if `hours` is not strictly positive.
    pub fn over_hours(self, hours: f64) -> Kilowatts {
        assert!(hours > 0.0, "duration must be positive, got {hours}");
        Kilowatts(self.0 / hours)
    }
}

impl Mul<KilowattHours> for PricePerKwh {
    type Output = Money;
    fn mul(self, rhs: KilowattHours) -> Money {
        Money(self.0 * rhs.0)
    }
}

impl Mul<PricePerKwh> for KilowattHours {
    type Output = Money;
    fn mul(self, rhs: PricePerKwh) -> Money {
        Money(self.0 * rhs.0)
    }
}

/// A dimensionless fraction guaranteed to lie in `[0, 1]`.
///
/// Cut-down values of the paper's reward tables ("0, 0.1, 0.2, ...") are
/// fractions of a customer's allowed use.
///
/// # Example
///
/// ```
/// use powergrid::units::Fraction;
///
/// let f = Fraction::new(0.4).unwrap();
/// assert_eq!(f.complement().value(), 0.6);
/// assert!(Fraction::new(1.2).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Fraction(f64);

/// Error returned when constructing a [`Fraction`] outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FractionRangeError {
    /// The offending raw value.
    pub value: f64,
}

impl fmt::Display for FractionRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fraction {} outside [0, 1]", self.value)
    }
}

impl std::error::Error for FractionRangeError {}

// `value` is always finite here because the constructors reject NaN, so the
// manual Eq below is sound for the error type's use in tests and matching.
impl Eq for Fraction {}

impl Ord for Fraction {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Invariant: 0 <= value <= 1 and finite, so total order exists.
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for Fraction {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl std::hash::Hash for Fraction {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl Fraction {
    /// The fraction `0`.
    pub const ZERO: Fraction = Fraction(0.0);
    /// The fraction `1`.
    pub const ONE: Fraction = Fraction(1.0);

    /// Creates a fraction, rejecting values outside `[0, 1]` or NaN.
    ///
    /// # Errors
    ///
    /// Returns [`FractionRangeError`] if `value` is NaN or outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Fraction, FractionRangeError> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            Err(FractionRangeError { value })
        } else {
            Ok(Fraction(value))
        }
    }

    /// Creates a fraction, clamping into `[0, 1]` (NaN becomes `0`).
    pub fn clamped(value: f64) -> Fraction {
        if value.is_nan() {
            Fraction(0.0)
        } else {
            Fraction(value.clamp(0.0, 1.0))
        }
    }

    /// The raw value in `[0, 1]`.
    pub fn value(self) -> f64 {
        self.0
    }

    /// `1 - self`.
    pub fn complement(self) -> Fraction {
        Fraction(1.0 - self.0)
    }

    /// Saturating addition within `[0, 1]`.
    pub fn saturating_add(self, other: Fraction) -> Fraction {
        Fraction::clamped(self.0 + other.0)
    }

    /// Multiplies two fractions (always stays within `[0, 1]`).
    pub fn and(self, other: Fraction) -> Fraction {
        Fraction(self.0 * other.0)
    }
}

impl fmt::Display for Fraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.0)
    }
}

impl Mul<KilowattHours> for Fraction {
    type Output = KilowattHours;
    fn mul(self, rhs: KilowattHours) -> KilowattHours {
        KilowattHours(self.0 * rhs.0)
    }
}

impl Mul<Kilowatts> for Fraction {
    type Output = Kilowatts;
    fn mul(self, rhs: Kilowatts) -> Kilowatts {
        Kilowatts(self.0 * rhs.0)
    }
}

impl Mul<Money> for Fraction {
    type Output = Money;
    fn mul(self, rhs: Money) -> Money {
        Money(self.0 * rhs.0)
    }
}

impl TryFrom<f64> for Fraction {
    type Error = FractionRangeError;
    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Fraction::new(value)
    }
}

impl From<Fraction> for f64 {
    fn from(f: Fraction) -> f64 {
        f.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_arithmetic() {
        let a = KilowattHours(2.0);
        let b = KilowattHours(3.5);
        assert_eq!((a + b).value(), 5.5);
        assert_eq!((b - a).value(), 1.5);
        assert_eq!((a * 2.0).value(), 4.0);
        assert_eq!((2.0 * a).value(), 4.0);
        assert_eq!((b / 2.0).value(), 1.75);
        assert_eq!(b / a, 1.75);
    }

    #[test]
    fn energy_sum_and_ordering() {
        let total: KilowattHours = [1.0, 2.0, 3.0].iter().map(|&v| KilowattHours(v)).sum();
        assert_eq!(total.value(), 6.0);
        assert!(KilowattHours(1.0) < KilowattHours(2.0));
        assert_eq!(
            KilowattHours(-3.0).clamp_non_negative(),
            KilowattHours::ZERO
        );
    }

    #[test]
    fn power_energy_conversion() {
        let p = Kilowatts(4.0);
        assert_eq!(p.for_hours(0.25).value(), 1.0);
        assert_eq!(KilowattHours(2.0).over_hours(0.5).value(), 4.0);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn energy_over_zero_hours_panics() {
        let _ = KilowattHours(1.0).over_hours(0.0);
    }

    #[test]
    fn price_times_energy_is_money() {
        let cost = PricePerKwh(0.5) * KilowattHours(10.0);
        assert_eq!(cost, Money(5.0));
        let cost2 = KilowattHours(10.0) * PricePerKwh(0.5);
        assert_eq!(cost2, Money(5.0));
    }

    #[test]
    fn fraction_validation() {
        assert!(Fraction::new(0.0).is_ok());
        assert!(Fraction::new(1.0).is_ok());
        assert!(Fraction::new(-0.01).is_err());
        assert!(Fraction::new(1.01).is_err());
        assert!(Fraction::new(f64::NAN).is_err());
        let err = Fraction::new(2.0).unwrap_err();
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn fraction_clamping() {
        assert_eq!(Fraction::clamped(-5.0), Fraction::ZERO);
        assert_eq!(Fraction::clamped(5.0), Fraction::ONE);
        assert_eq!(Fraction::clamped(f64::NAN), Fraction::ZERO);
        assert_eq!(Fraction::clamped(0.3).value(), 0.3);
    }

    #[test]
    fn fraction_operations() {
        let f = Fraction::new(0.4).unwrap();
        assert!((f.complement().value() - 0.6).abs() < 1e-12);
        assert_eq!(f.saturating_add(Fraction::new(0.9).unwrap()), Fraction::ONE);
        assert!((f.and(Fraction::new(0.5).unwrap()).value() - 0.2).abs() < 1e-12);
        assert_eq!(f * KilowattHours(10.0), KilowattHours(4.0));
    }

    #[test]
    fn fraction_ordering_and_conversion() {
        let lo = Fraction::new(0.1).unwrap();
        let hi = Fraction::new(0.9).unwrap();
        assert!(lo < hi);
        assert_eq!(lo.max(hi), hi);
        let f: Fraction = 0.25f64.try_into().unwrap();
        assert_eq!(f64::from(f), 0.25);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", KilowattHours(1.5)), "1.500 kWh");
        assert_eq!(format!("{}", Kilowatts(2.0)), "2.000 kW");
        assert_eq!(format!("{}", Money(24.8)), "24.800 cr");
        assert_eq!(format!("{}", Fraction::clamped(0.4)), "0.40");
        assert_eq!(format!("{}", Celsius(-5.0)), "-5.000 °C");
    }

    #[test]
    fn neg_and_abs() {
        assert_eq!((-Money(3.0)).value(), -3.0);
        assert_eq!(Money(-3.0).abs(), Money(3.0));
    }

    #[test]
    fn money_ordering() {
        let mut v = vec![Money(3.0), Money(1.0), Money(2.0)];
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(v, vec![Money(1.0), Money(2.0), Money(3.0)]);
    }
}
