//! Weather model driving temperature-sensitive demand.
//!
//! The paper's Utility Agent "acquires information from the External World
//! (e.g., weather conditions)" to predict demand. We model daily temperature
//! as a seasonal base level plus a sinusoidal diurnal cycle plus seeded
//! noise, which is enough structure for the weather-regression predictor to
//! have signal to exploit.

use crate::series::Series;
use crate::time::TimeAxis;
use crate::units::Celsius;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Season of the year, selecting a base temperature regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Season {
    /// Cold, heating-dominated demand (the paper's peak scenario).
    Winter,
    /// Mild shoulder season.
    Spring,
    /// Warm, low heating demand.
    Summer,
    /// Mild shoulder season.
    Autumn,
}

impl Season {
    /// Mean daily temperature for the season (northern-European climate).
    pub fn base_temperature(self) -> Celsius {
        match self {
            Season::Winter => Celsius(-4.0),
            Season::Spring => Celsius(8.0),
            Season::Summer => Celsius(19.0),
            Season::Autumn => Celsius(7.0),
        }
    }

    /// All four seasons.
    pub fn all() -> [Season; 4] {
        [
            Season::Winter,
            Season::Spring,
            Season::Summer,
            Season::Autumn,
        ]
    }
}

impl std::fmt::Display for Season {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Season::Winter => "winter",
            Season::Spring => "spring",
            Season::Summer => "summer",
            Season::Autumn => "autumn",
        };
        f.write_str(name)
    }
}

/// A parametric daily temperature model.
///
/// # Example
///
/// ```
/// use powergrid::weather::WeatherModel;
/// use powergrid::time::TimeAxis;
///
/// let axis = TimeAxis::hourly();
/// let temps = WeatherModel::winter().temperatures(&axis, 1);
/// assert_eq!(temps.len(), 24);
/// // Winter days stay cold.
/// assert!(temps.max() < 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeatherModel {
    season: Season,
    /// Half of the day/night temperature swing, in °C.
    diurnal_amplitude: f64,
    /// Standard deviation of per-slot noise, in °C.
    noise_sd: f64,
    /// Offset added to the seasonal base (cold snaps, warm spells).
    anomaly: f64,
}

impl WeatherModel {
    /// Creates a model for a season with default amplitude and noise.
    pub fn new(season: Season) -> WeatherModel {
        WeatherModel {
            season,
            diurnal_amplitude: 3.0,
            noise_sd: 0.5,
            anomaly: 0.0,
        }
    }

    /// Winter model (the Figure 1 peak scenario).
    pub fn winter() -> WeatherModel {
        WeatherModel::new(Season::Winter)
    }

    /// Summer model.
    pub fn summer() -> WeatherModel {
        WeatherModel::new(Season::Summer)
    }

    /// Sets the diurnal amplitude (°C).
    pub fn with_amplitude(mut self, amplitude: f64) -> WeatherModel {
        self.diurnal_amplitude = amplitude;
        self
    }

    /// Sets the per-slot noise standard deviation (°C).
    pub fn with_noise(mut self, sd: f64) -> WeatherModel {
        self.noise_sd = sd;
        self
    }

    /// Adds a temperature anomaly (e.g. `-6.0` for a cold snap).
    pub fn with_anomaly(mut self, anomaly: f64) -> WeatherModel {
        self.anomaly = anomaly;
        self
    }

    /// The season this model describes.
    pub fn season(&self) -> Season {
        self.season
    }

    /// Generates the day's temperature series (°C per slot), seeded for
    /// reproducibility: the same seed always yields the same weather.
    pub fn temperatures(&self, axis: &TimeAxis, seed: u64) -> Series {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_5eed);
        let base = self.season.base_temperature().value() + self.anomaly;
        let amp = self.diurnal_amplitude;
        let sd = self.noise_sd;
        Series::from_fn(*axis, |t| {
            // Coldest around 05:00, warmest around 15:00.
            let phase = (t - 15.0 / 24.0) * std::f64::consts::TAU;
            let diurnal = amp * phase.cos();
            let noise: f64 = if sd > 0.0 {
                // Box-Muller on two uniform draws keeps us independent of
                // rand_distr, which is not in the sanctioned crate set.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            } else {
                0.0
            };
            base + diurnal + noise
        })
    }

    /// Mean temperature of a generated day.
    pub fn mean_temperature(&self, axis: &TimeAxis, seed: u64) -> Celsius {
        Celsius(self.temperatures(axis, seed).mean())
    }
}

impl Default for WeatherModel {
    fn default() -> Self {
        WeatherModel::winter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seasons_have_expected_ordering() {
        assert!(Season::Winter.base_temperature() < Season::Spring.base_temperature());
        assert!(Season::Spring.base_temperature() < Season::Summer.base_temperature());
        assert_eq!(Season::all().len(), 4);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let axis = TimeAxis::hourly();
        let model = WeatherModel::winter();
        assert_eq!(model.temperatures(&axis, 1), model.temperatures(&axis, 1));
        assert_ne!(model.temperatures(&axis, 1), model.temperatures(&axis, 2));
    }

    #[test]
    fn winter_colder_than_summer() {
        let axis = TimeAxis::hourly();
        let w = WeatherModel::winter().mean_temperature(&axis, 3);
        let s = WeatherModel::summer().mean_temperature(&axis, 3);
        assert!(w < s);
    }

    #[test]
    fn anomaly_shifts_mean() {
        let axis = TimeAxis::hourly();
        let normal = WeatherModel::winter()
            .with_noise(0.0)
            .mean_temperature(&axis, 0);
        let snap = WeatherModel::winter()
            .with_noise(0.0)
            .with_anomaly(-6.0)
            .mean_temperature(&axis, 0);
        assert!((normal.value() - snap.value() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn diurnal_cycle_peaks_in_afternoon() {
        let axis = TimeAxis::hourly();
        let temps = WeatherModel::winter()
            .with_noise(0.0)
            .temperatures(&axis, 0);
        let warmest = temps.argmax();
        assert!((14..=16).contains(&warmest), "warmest hour was {warmest}");
    }

    #[test]
    fn noise_free_model_is_smooth() {
        let axis = TimeAxis::quarter_hourly();
        let temps = WeatherModel::winter()
            .with_noise(0.0)
            .temperatures(&axis, 0);
        for i in 1..temps.len() {
            assert!((temps[i] - temps[i - 1]).abs() < 0.5);
        }
    }
}
