//! Property tests of the household demand model — the physical
//! quantities the grid→negotiation pipeline feeds into customer
//! profiles, so their invariants gate everything downstream.

use powergrid::household::{Household, HouseholdId};
use powergrid::prelude::*;
use powergrid::time::Interval;
use proptest::prelude::*;

fn arb_axis() -> impl Strategy<Value = TimeAxis> {
    prop_oneof![
        Just(TimeAxis::hourly()),
        Just(TimeAxis::quarter_hourly()),
        Just(TimeAxis::new(30)),
    ]
}

proptest! {
    /// Demand is a physical energy series: every slot non-negative, and
    /// a day of any weather sums to strictly positive consumption.
    #[test]
    fn demand_profile_is_non_negative(
        axis in arb_axis(),
        id in 0u64..10_000,
        occupants in 1u32..7,
        temp in -25.0f64..25.0,
        seed in 0u64..10_000,
    ) {
        let h = Household::standard(HouseholdId(id), occupants);
        let demand = h.demand_profile(&axis, temp, seed);
        prop_assert_eq!(demand.len(), axis.slots_per_day());
        prop_assert!(demand.min() >= 0.0, "negative slot in {demand:?}");
        prop_assert!(demand.total().value() > 0.0, "a household always consumes");
    }

    /// The profile is a pure function of `(household, axis, temp, seed)`.
    #[test]
    fn demand_profile_is_deterministic_per_seed(
        axis in arb_axis(),
        id in 0u64..10_000,
        occupants in 1u32..7,
        temp in -25.0f64..25.0,
        seed in 0u64..10_000,
    ) {
        let h = Household::standard(HouseholdId(id), occupants);
        prop_assert_eq!(
            h.demand_profile(&axis, temp, seed),
            h.demand_profile(&axis, temp, seed)
        );
    }

    /// At fixed temperature and seed, total daily demand grows with
    /// household size (more occupants ⇒ higher intensity and at least as
    /// much equipment — the §3.2.1 disparity the offer method trips on).
    #[test]
    fn total_demand_monotone_in_occupants(
        axis in arb_axis(),
        id in 0u64..10_000,
        temp in -25.0f64..25.0,
        seed in 0u64..10_000,
    ) {
        let mut previous = 0.0;
        for occupants in 1u32..=6 {
            let h = Household::standard(HouseholdId(id), occupants);
            let total = h.demand_profile(&axis, temp, seed).total().value();
            prop_assert!(
                total > previous,
                "{occupants} occupants use {total}, fewer used {previous}"
            );
            previous = total;
        }
    }

    /// Colder days never lower demand (heating is the only
    /// temperature-sensitive load, and it grows as temperature falls).
    #[test]
    fn demand_monotone_as_temperature_falls(
        id in 0u64..10_000,
        occupants in 1u32..7,
        temp in -20.0f64..20.0,
        seed in 0u64..10_000,
    ) {
        let axis = TimeAxis::hourly();
        let h = Household::standard(HouseholdId(id), occupants);
        let milder = h.demand_profile(&axis, temp, seed).total();
        let colder = h.demand_profile(&axis, temp - 5.0, seed).total();
        prop_assert!(colder >= milder);
    }

    /// The quantities the pipeline derives preferences from are
    /// physically consistent: saving potential never exceeds interval
    /// usage, and the implied max cut-down is a valid fraction.
    #[test]
    fn saving_potential_bounded_by_usage(
        id in 0u64..10_000,
        occupants in 1u32..7,
        temp in -25.0f64..25.0,
        seed in 0u64..10_000,
        start in 0usize..20,
        len in 1usize..4,
    ) {
        let axis = TimeAxis::hourly();
        let interval = Interval::new(start, (start + len).min(24));
        let h = Household::standard(HouseholdId(id), occupants);
        let usage = h.demand_profile(&axis, temp, seed).energy_over(interval);
        let potential = h.saving_potential(&axis, temp, seed, interval);
        prop_assert!(potential.value() >= 0.0);
        prop_assert!(potential <= usage + KilowattHours(1e-9));
        let cutdown = h.max_cutdown(&axis, temp, seed, interval);
        prop_assert!((0.0..=1.0).contains(&cutdown.value()));
    }
}
