//! Property-based tests of the time-series algebra and domain
//! substrate invariants.

use powergrid::prelude::*;
use powergrid::time::Interval;
use proptest::prelude::*;

fn arb_axis() -> impl Strategy<Value = TimeAxis> {
    prop_oneof![
        Just(TimeAxis::hourly()),
        Just(TimeAxis::quarter_hourly()),
        Just(TimeAxis::new(30))
    ]
}

fn arb_series() -> impl Strategy<Value = Series> {
    arb_axis().prop_flat_map(|axis| {
        prop::collection::vec(0.0f64..100.0, axis.slots_per_day())
            .prop_map(move |values| Series::from_values(axis, values))
    })
}

proptest! {
    /// Addition of series is commutative and sums pointwise.
    #[test]
    fn series_addition_commutative(a in arb_series()) {
        let b = a.map(|v| v * 0.5 + 1.0);
        let ab = &a + &b;
        let ba = &b + &a;
        prop_assert_eq!(&ab, &ba);
        prop_assert!((ab.sum() - (a.sum() + b.sum())).abs() < 1e-6);
    }

    /// Scaling scales the sum linearly.
    #[test]
    fn series_scaling_linear(s in arb_series(), k in 0.0f64..10.0) {
        let scaled = s.scale(k);
        prop_assert!((scaled.sum() - k * s.sum()).abs() < 1e-6 * (1.0 + s.sum()));
    }

    /// Smoothing preserves total mass within boundary effects and never
    /// exceeds the original extremes.
    #[test]
    fn smoothing_bounded_by_extremes(s in arb_series(), half in 0usize..4) {
        let smoothed = s.smooth(half);
        prop_assert!(smoothed.max() <= s.max() + 1e-9);
        prop_assert!(smoothed.min() >= s.min() - 1e-9);
    }

    /// `sum_over` of the whole day equals `sum`, and splitting the day
    /// into two intervals is additive.
    #[test]
    fn interval_sums_are_additive(s in arb_series(), split_frac in 0.0f64..1.0) {
        let n = s.len();
        let split = ((n as f64) * split_frac) as usize;
        let left = s.sum_over(Interval::new(0, split));
        let right = s.sum_over(Interval::new(split, n));
        prop_assert!((left + right - s.sum()).abs() < 1e-6);
    }

    /// The peak interval really is maximal among all windows of its width.
    #[test]
    fn peak_interval_is_argmax(s in arb_series(), width_frac in 0.05f64..0.5) {
        let n = s.len();
        let width = ((n as f64 * width_frac) as usize).max(1);
        let curve = DemandCurve::new(s);
        let peak = curve.peak_interval(width);
        let best = curve.energy_over(peak);
        for start in 0..=(n - width) {
            let window = curve.energy_over(Interval::new(start, start + width));
            prop_assert!(window <= best + KilowattHours(1e-9));
        }
    }

    /// Fractions stay in [0, 1] under clamping and complement.
    #[test]
    fn fraction_invariants(raw in -10.0f64..10.0) {
        let f = Fraction::clamped(raw);
        prop_assert!((0.0..=1.0).contains(&f.value()));
        prop_assert!((0.0..=1.0).contains(&f.complement().value()));
        prop_assert!((f.value() + f.complement().value() - 1.0).abs() < 1e-12);
    }

    /// Tariff billing: accepting a limit at or above the predicted use is
    /// always at least as cheap as the normal price (the lower price is a
    /// pure discount).
    #[test]
    fn generous_limit_never_costs_more(used in 0.0f64..50.0, slack in 0.0f64..20.0) {
        let t = Tariff::default_scheme();
        let used = KilowattHours(used);
        let limit = used + KilowattHours(slack);
        prop_assert!(t.bill_with_limit(used, limit) <= t.bill_normal(used));
    }

    /// Production cost is monotone in demanded energy.
    #[test]
    fn production_cost_monotone(a in 0.0f64..200.0, b in 0.0f64..200.0) {
        let m = ProductionModel::two_tier(Kilowatts(100.0), Kilowatts(300.0));
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            m.cost_of_energy(KilowattHours(lo), 1.0) <= m.cost_of_energy(KilowattHours(hi), 1.0)
        );
    }

    /// Household demand is deterministic per seed and strictly positive
    /// for standard households.
    #[test]
    fn household_demand_reproducible(occupants in 1u32..6, seed in 0u64..100) {
        let axis = TimeAxis::hourly();
        let h = Household::standard(HouseholdId(1), occupants);
        let a = h.demand_profile(&axis, -4.0, seed);
        let b = h.demand_profile(&axis, -4.0, seed);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.sum() > 0.0);
    }
}
