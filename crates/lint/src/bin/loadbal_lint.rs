//! `loadbal-lint` — run the workspace determinism-and-safety pass.
//!
//! ```text
//! loadbal-lint --workspace [--json] [--root <dir>]
//! loadbal-lint <file.rs>... [--json] [--root <dir>]
//! ```
//!
//! Exit status: 0 clean, 1 findings, 2 usage or I/O error. With
//! explicit files, paths are linted relative to the workspace root so
//! per-crate rule scoping still applies. See the `loadbal_lint` crate
//! docs for every rule, the waiver syntax, and the rationale.

use loadbal_lint::{findings_to_json, lint_file, lint_workspace, rel_path, Finding};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: loadbal-lint [--workspace] [--json] [--root <dir>] [files...]
  --workspace   lint every workspace .rs file (default when no files given)
  --json        machine-readable findings on stdout
  --root <dir>  workspace root (default: nearest ancestor with a [workspace] manifest)";

fn main() -> ExitCode {
    let mut json = false;
    let mut workspace = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                return usage_error(&format!("unknown flag '{flag}'"));
            }
            file => files.push(PathBuf::from(file)),
        }
    }
    if !workspace && files.is_empty() {
        workspace = true;
    }

    let root = match root_arg.or_else(find_workspace_root) {
        Some(root) => root,
        None => return usage_error("no workspace root found (pass --root)"),
    };

    let findings = if workspace {
        match lint_workspace(&root) {
            Ok(findings) => findings,
            Err(e) => {
                eprintln!("loadbal-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut findings: Vec<Finding> = Vec::new();
        for file in &files {
            let abs = if file.is_absolute() {
                file.clone()
            } else {
                root.join(file)
            };
            let src = match std::fs::read_to_string(&abs) {
                Ok(src) => src,
                Err(e) => {
                    eprintln!("loadbal-lint: {}: {e}", file.display());
                    return ExitCode::from(2);
                }
            };
            findings.extend(lint_file(&rel_path(&root, &abs), &src));
        }
        findings.sort();
        findings
    };

    if json {
        println!("{}", findings_to_json(&findings));
    } else {
        for finding in &findings {
            println!("{finding}");
        }
        if findings.is_empty() {
            eprintln!("loadbal-lint: clean");
        } else {
            eprintln!(
                "loadbal-lint: {} finding{}",
                findings.len(),
                if findings.len() == 1 { "" } else { "s" }
            );
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("loadbal-lint: {message}\n{USAGE}");
    ExitCode::from(2)
}

/// Nearest ancestor of the current directory whose `Cargo.toml`
/// declares `[workspace]`; falls back to this crate's parent workspace
/// (so `cargo run -p loadbal-lint` works from anywhere in the tree).
fn find_workspace_root() -> Option<PathBuf> {
    if let Ok(mut dir) = std::env::current_dir() {
        loop {
            if is_workspace_root(&dir) {
                return Some(dir);
            }
            if !dir.pop() {
                break;
            }
        }
    }
    let baked = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    baked.canonicalize().ok().filter(|p| is_workspace_root(p))
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|manifest| manifest.contains("[workspace]"))
        .unwrap_or(false)
}
