//! `loadbal-lint` — the workspace's determinism-and-safety invariants
//! as a source-level static-analysis pass.
//!
//! # Why byte-identity needs source-level enforcement
//!
//! Everything this repo reproduces from Brazier et al. rests on one
//! invariant: a campaign is **byte-identical** across thread counts and
//! execution modes (sync / distributed-clean). The property tests prove
//! it dynamically — but only on the inputs they sample. One stray
//! `HashMap` iteration, `Instant::now()` or environment read in a hot
//! path can break reproducibility only on inputs (or hosts) the tests
//! never see. This linter makes the invariant checkable on every line
//! of every commit: the sources of nondeterminism are *named*, and any
//! appearance outside test code either gets fixed or carries a written
//! waiver.
//!
//! # Rules
//!
//! | id | scope | fires on | sanctioned alternative |
//! |----|-------|----------|------------------------|
//! | `det-hash` | non-test code of `core`, `grid`, `sim`, `archive`, `desire`, facade | `HashMap` / `HashSet` | `BTreeMap` / `BTreeSet` / sorted `Vec` |
//! | `det-time` | same | `Instant` / `SystemTime` | simulated calendar time |
//! | `det-env` | same | `std::env`, `env!`, `option_env!` | explicit configuration |
//! | `det-entropy` | same | `thread_rng`, `from_entropy`, `RandomState`, `ThreadId`, `thread::current`, `getrandom` | seeded vendored `rand` |
//! | `unsafe-pool` | whole workspace (vendor excluded) | `unsafe` outside `crates/core/src/sweep.rs`'s `mod pool` | safe Rust, or a reasoned waiver |
//! | `unsafe-safety` | whole workspace | `unsafe` block/impl/fn without an adjacent `// SAFETY:` (or `# Safety` doc) comment | write the safety argument |
//! | `unsafe-header` | every crate-root `lib.rs` | missing `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]` | add the header |
//! | `panic-archive` | `crates/archive/src` (CLI excluded), non-test | `.unwrap()` / `.expect()` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` / slice indexing | typed `ArchiveError`, `.get(…)` |
//! | `waiver-reason` | everywhere | a waiver without `reason="…"` | say why |
//! | `waiver-unknown` | everywhere | a waiver naming no known rule | fix the rule id |
//!
//! Test code — anything under a `tests/`, `benches/` or `examples/`
//! directory, inside a `#[cfg(test)]` item, or inside a `mod tests`
//! block — is exempt from the `det-*` and `panic-archive` rules:
//! tests legitimately use `HashSet` to check uniqueness and `unwrap`
//! to fail loudly. The vendored dependency stand-ins
//! (`crates/vendor/*`) are third-party surrogates and are not scanned.
//! The bench crate is measurement tooling (wall-clock readings are its
//! purpose) and is outside the `det-*` scope, but its `unsafe` is
//! still confined and commented like everyone else's.
//!
//! # Waivers
//!
//! ```text
//! // lint: allow(det-env) reason="CLI entry point legitimately reads its argv"
//! let args: Vec<String> = std::env::args().collect();
//! ```
//!
//! A waiver on its own line suppresses the named rule(s) on the next
//! code line; a trailing waiver suppresses its own line. Several rules
//! may be waived at once: `lint: allow(det-env, det-time) reason="…"`.
//! A waiver **without a reason is itself a finding** (`waiver-reason`),
//! so the judgment call behind every exception stays on the record.
//!
//! # Running the pass
//!
//! The same pass runs three ways, so it cannot rot:
//!
//! 1. `cargo run -p loadbal-lint -- --workspace` — the CLI (add
//!    `--json` for machine-readable findings);
//! 2. the `lint-invariants` CI job;
//! 3. `tests/lint_conformance.rs` — a tier-1 integration test, so a
//!    plain `cargo test -q` gates it.
//!
//! The experiments binary also runs the pass at startup and stamps
//! `lint_clean` into every `BENCH_E*.json` record, so the perf
//! trajectory records invariant status alongside timings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rules;
pub mod scanner;

pub use rules::{file_profile, lint_file, Finding, Rule};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never scanned: build output, VCS, and the vendored
/// third-party stand-ins.
fn skip_dir(rel: &str) -> bool {
    rel == "target" || rel == ".git" || rel == "crates/vendor"
}

/// Collects every workspace `.rs` file under `root` (sorted, so output
/// order is deterministic), excluding `target/`, `.git/` and
/// `crates/vendor/`.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let rel = rel_path(root, &path);
            if path.is_dir() {
                if !skip_dir(&rel) {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// The workspace-relative path with forward slashes (rule scoping keys
/// off this form).
pub fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lints every workspace `.rs` file under `root`. Findings come back
/// sorted by (file, line, rule).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in workspace_files(root)? {
        let src = fs::read_to_string(&path)?;
        findings.extend(lint_file(&rel_path(root, &path), &src));
    }
    findings.sort();
    Ok(findings)
}

/// Renders findings as a JSON array (stable field order, valid even
/// when empty) for the `--json` output mode.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\":{},\"line\":{},\"rule\":{},\"message\":{},\"rationale\":{}}}",
            json_string(&f.file),
            f.line,
            json_string(f.rule.id()),
            json_string(&f.message),
            json_string(f.rule.rationale())
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_findings_render_as_empty_array() {
        assert_eq!(findings_to_json(&[]), "[]");
    }
}
