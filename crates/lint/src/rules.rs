//! The rule engine: repo-specific determinism and safety rules over the
//! [`scanner`](crate::scanner) token stream.
//!
//! Every rule, its scope, and its rationale is listed in the crate docs
//! ([`crate`]). This module implements:
//!
//! * per-file **scoping** (which crates each rule applies to),
//! * **test-region tracking** (`#[cfg(test)]` items and `mod tests`
//!   blocks are exempt from the determinism and panic rules),
//! * **waivers** (`// lint: allow(<rule>) reason="…"`), and
//! * the token-level matchers themselves.

use crate::scanner::{scan, Scan, Token, TokenKind};
use std::fmt;
use std::ops::Range;

/// Every rule the linter knows, by stable ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` in deterministic non-test code.
    DetHash,
    /// `Instant`/`SystemTime` in deterministic non-test code.
    DetTime,
    /// `std::env` / `env!` in deterministic non-test code.
    DetEnv,
    /// Thread identity or OS entropy in deterministic non-test code.
    DetEntropy,
    /// `unsafe` outside `crates/core/src/sweep.rs`'s `mod pool`.
    UnsafePool,
    /// `unsafe` without an adjacent `// SAFETY:` / `# Safety` comment.
    UnsafeSafety,
    /// Crate root missing `forbid(unsafe_code)`/`deny(unsafe_code)`.
    UnsafeHeader,
    /// Panic-capable token on an archive decode path.
    PanicArchive,
    /// A waiver comment without a `reason="…"`.
    WaiverReason,
    /// A waiver naming no known rule (or unparseable).
    WaiverUnknown,
}

impl Rule {
    /// All rules, for docs and waiver validation.
    pub const ALL: [Rule; 10] = [
        Rule::DetHash,
        Rule::DetTime,
        Rule::DetEnv,
        Rule::DetEntropy,
        Rule::UnsafePool,
        Rule::UnsafeSafety,
        Rule::UnsafeHeader,
        Rule::PanicArchive,
        Rule::WaiverReason,
        Rule::WaiverUnknown,
    ];

    /// The stable ID used in output and in waiver comments.
    pub fn id(self) -> &'static str {
        match self {
            Rule::DetHash => "det-hash",
            Rule::DetTime => "det-time",
            Rule::DetEnv => "det-env",
            Rule::DetEntropy => "det-entropy",
            Rule::UnsafePool => "unsafe-pool",
            Rule::UnsafeSafety => "unsafe-safety",
            Rule::UnsafeHeader => "unsafe-header",
            Rule::PanicArchive => "panic-archive",
            Rule::WaiverReason => "waiver-reason",
            Rule::WaiverUnknown => "waiver-unknown",
        }
    }

    /// Why the rule exists — printed beside every finding.
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::DetHash => {
                "HashMap/HashSet iteration order is seeded per process (RandomState); \
                 campaigns must be byte-identical across runs — use BTreeMap/BTreeSet \
                 or a sorted Vec"
            }
            Rule::DetTime => {
                "wall-clock reads differ per run; simulation logic must derive time \
                 from the simulated calendar, never the host clock"
            }
            Rule::DetEnv => {
                "the process environment varies per host and run; thread counts and \
                 paths must arrive through explicit configuration"
            }
            Rule::DetEntropy => {
                "thread identity and OS entropy are unseeded nondeterminism; derive \
                 randomness from an explicit seed (the vendored rand)"
            }
            Rule::UnsafePool => {
                "unsafe is confined to the WorkerPool's lifetime-erased batch hand-off \
                 (crates/core/src/sweep.rs, mod pool); everything else is safe Rust"
            }
            Rule::UnsafeSafety => {
                "every unsafe block/impl/fn must state its safety argument in an \
                 immediately preceding // SAFETY: (or # Safety doc) comment"
            }
            Rule::UnsafeHeader => {
                "crate roots must declare #![forbid(unsafe_code)] (or deny) so new \
                 unsafe cannot land silently"
            }
            Rule::PanicArchive => {
                "archive decode paths parse untrusted bytes and must return typed \
                 ArchiveError, never unwrap/expect/panic!/index"
            }
            Rule::WaiverReason => "a waiver without a reason hides the judgment call it encodes",
            Rule::WaiverUnknown => "a waiver naming no known rule suppresses nothing",
        }
    }

    fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One lint finding: where, which rule, and what was matched.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// What was matched, human-readable.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} — {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message,
            self.rule.rationale()
        )
    }
}

/// Which rules apply to a file, derived from its workspace-relative
/// path. See the crate docs for the scope table.
#[derive(Debug, Clone, Copy)]
pub struct FileProfile {
    /// Determinism rules (`det-*`) apply.
    pub deterministic: bool,
    /// `panic-archive` applies.
    pub panic_checked: bool,
    /// `unsafe-header` applies (the file is a crate root `lib.rs`).
    pub crate_root: bool,
    /// This is the one file allowed to contain `unsafe` (inside
    /// `mod pool`).
    pub pool_file: bool,
    /// The whole file is test/bench/example code.
    pub test_file: bool,
}

/// The crates whose non-test code must be deterministic: everything on
/// the campaign byte-identity path, plus the facade.
const DETERMINISTIC_PREFIXES: [&str; 6] = [
    "crates/core/src/",
    "crates/grid/src/",
    "crates/sim/src/",
    "crates/archive/src/",
    "crates/desire/src/",
    "src/",
];

/// Classifies a workspace-relative path.
pub fn file_profile(rel_path: &str) -> FileProfile {
    let test_file = rel_path
        .split('/')
        .any(|part| part == "tests" || part == "benches" || part == "examples");
    let deterministic = !test_file
        && DETERMINISTIC_PREFIXES
            .iter()
            .any(|p| rel_path.starts_with(p));
    let panic_checked = !test_file
        && rel_path.starts_with("crates/archive/src/")
        && !rel_path.starts_with("crates/archive/src/bin/");
    let crate_root = rel_path == "src/lib.rs"
        || (rel_path.starts_with("crates/") && rel_path.ends_with("/src/lib.rs"));
    FileProfile {
        deterministic,
        panic_checked,
        crate_root,
        pool_file: rel_path == "crates/core/src/sweep.rs",
        test_file,
    }
}

/// Lints one file's source text under the scoping its path implies.
///
/// `rel_path` must be workspace-relative with forward slashes (e.g.
/// `crates/core/src/sweep.rs`) — rule scoping keys off it.
pub fn lint_file(rel_path: &str, src: &str) -> Vec<Finding> {
    let profile = file_profile(rel_path);
    let scan = scan(src);
    let file = FileContext::new(rel_path, &scan, profile);
    file.run()
}

// ---------------------------------------------------------------------
// Per-file context: significant tokens, line classes, regions, waivers
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineClass {
    Blank,
    CommentOnly,
    AttributeOnly,
    Code,
}

#[derive(Debug)]
struct Waiver {
    rules: Vec<String>,
    reason: bool,
    /// Line of the waiver comment itself (for waiver-* findings).
    at: u32,
    /// Line whose findings it suppresses.
    target: u32,
    parsed: bool,
}

struct FileContext<'a> {
    rel_path: &'a str,
    scan: &'a Scan<'a>,
    profile: FileProfile,
    /// Indices into `scan.tokens` of non-comment tokens.
    sig: Vec<usize>,
    /// Byte ranges of test-gated code.
    test_regions: Vec<Range<usize>>,
    /// Byte range of `mod pool { … }` when this is the pool file.
    pool_region: Option<Range<usize>>,
    line_class: Vec<LineClass>,
    /// Concatenated comment text per line (block comments contribute to
    /// every line they span).
    line_comments: Vec<String>,
    waivers: Vec<Waiver>,
}

impl<'a> FileContext<'a> {
    fn new(rel_path: &'a str, scan: &'a Scan<'a>, profile: FileProfile) -> FileContext<'a> {
        let sig: Vec<usize> = scan
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let line_count = scan.src.lines().count().max(1);
        let (line_class, line_comments) = classify_lines(scan, line_count);
        let test_regions = test_regions(scan, &sig);
        let pool_region = if profile.pool_file {
            mod_region(scan, &sig, "pool")
        } else {
            None
        };
        let waivers = collect_waivers(scan, &line_class);
        FileContext {
            rel_path,
            scan,
            profile,
            sig,
            test_regions,
            pool_region,
            line_class,
            line_comments,
            waivers,
        }
    }

    fn in_test(&self, token: &Token) -> bool {
        self.profile.test_file || self.test_regions.iter().any(|r| r.contains(&token.start))
    }

    fn in_pool(&self, token: &Token) -> bool {
        self.pool_region
            .as_ref()
            .is_some_and(|r| r.contains(&token.start))
    }

    fn sig_token(&self, sig_index: usize) -> Option<&Token> {
        self.sig
            .get(sig_index)
            .and_then(|&i| self.scan.tokens.get(i))
    }

    fn sig_text(&self, sig_index: usize) -> &str {
        self.sig_token(sig_index).map_or("", |t| self.scan.text(t))
    }

    fn sig_is_ident(&self, sig_index: usize, name: &str) -> bool {
        self.sig_token(sig_index)
            .is_some_and(|t| t.kind == TokenKind::Ident && self.scan.text(t) == name)
    }

    fn sig_is_punct(&self, sig_index: usize, ch: char) -> bool {
        self.sig_token(sig_index)
            .is_some_and(|t| t.kind == TokenKind::Punct && self.scan.text(t).starts_with(ch))
    }

    /// `a :: b` starting at significant index `i` (where `a` already
    /// matched).
    fn path_seg_follows(&self, i: usize, seg: &str) -> bool {
        self.sig_is_punct(i + 1, ':')
            && self.sig_is_punct(i + 2, ':')
            && self.sig_is_ident(i + 3, seg)
    }

    fn run(&self) -> Vec<Finding> {
        let mut findings = Vec::new();
        self.rule_unsafe_header(&mut findings);
        for (si, &ti) in self.sig.iter().enumerate() {
            let token = &self.scan.tokens[ti];
            if self.profile.deterministic && !self.in_test(token) {
                self.det_rules(si, token, &mut findings);
            }
            if token.kind == TokenKind::Ident && self.scan.text(token) == "unsafe" {
                self.unsafe_rules(si, token, &mut findings);
            }
            if self.profile.panic_checked && !self.in_test(token) {
                self.panic_rules(si, token, &mut findings);
            }
        }
        self.apply_waivers(&mut findings);
        findings.sort();
        findings
    }

    fn push(&self, findings: &mut Vec<Finding>, line: u32, rule: Rule, message: String) {
        findings.push(Finding {
            file: self.rel_path.to_string(),
            line,
            rule,
            message,
        });
    }

    // -- determinism ---------------------------------------------------

    fn det_rules(&self, si: usize, token: &Token, findings: &mut Vec<Finding>) {
        if token.kind != TokenKind::Ident {
            return;
        }
        let text = self.scan.text(token);
        match text {
            "HashMap" | "HashSet" => self.push(
                findings,
                token.line,
                Rule::DetHash,
                format!("`{text}` in deterministic non-test code"),
            ),
            "Instant" | "SystemTime" => self.push(
                findings,
                token.line,
                Rule::DetTime,
                format!("`{text}` in deterministic non-test code"),
            ),
            "std" if self.path_seg_follows(si, "env") => self.push(
                findings,
                token.line,
                Rule::DetEnv,
                "`std::env` in deterministic non-test code".to_string(),
            ),
            "env" | "option_env" if self.sig_is_punct(si + 1, '!') => self.push(
                findings,
                token.line,
                Rule::DetEnv,
                format!("`{text}!` in deterministic non-test code"),
            ),
            "thread_rng" | "from_entropy" | "RandomState" | "ThreadId" | "getrandom" => self.push(
                findings,
                token.line,
                Rule::DetEntropy,
                format!("`{text}` in deterministic non-test code"),
            ),
            "thread" if self.path_seg_follows(si, "current") => self.push(
                findings,
                token.line,
                Rule::DetEntropy,
                "`thread::current` in deterministic non-test code".to_string(),
            ),
            _ => {}
        }
    }

    // -- unsafe confinement --------------------------------------------

    fn unsafe_rules(&self, si: usize, token: &Token, findings: &mut Vec<Finding>) {
        let form = match self.sig_text(si + 1) {
            "impl" => "unsafe impl",
            "fn" => "unsafe fn",
            "trait" => "unsafe trait",
            _ => "unsafe block",
        };
        if !self.in_pool(token) {
            self.push(
                findings,
                token.line,
                Rule::UnsafePool,
                format!("{form} outside the worker-pool module"),
            );
        }
        if !self.has_adjacent_safety_comment(token.line) {
            self.push(
                findings,
                token.line,
                Rule::UnsafeSafety,
                format!("{form} without an adjacent SAFETY comment"),
            );
        }
    }

    /// True when the contiguous comment/attribute lines directly above
    /// `line` (or a trailing comment on `line` itself) contain
    /// `SAFETY:` or a `# Safety` doc section.
    fn has_adjacent_safety_comment(&self, line: u32) -> bool {
        let idx = (line as usize).saturating_sub(1); // 0-based
        if self.comment_text_at(idx).contains("SAFETY:") {
            return true;
        }
        let mut cursor = idx;
        while cursor > 0 {
            cursor -= 1;
            match self.line_class.get(cursor) {
                Some(LineClass::CommentOnly) => {
                    let text = self.comment_text_at(cursor);
                    if text.contains("SAFETY:") || text.contains("# Safety") {
                        return true;
                    }
                }
                Some(LineClass::AttributeOnly) => {}
                _ => break,
            }
        }
        false
    }

    fn comment_text_at(&self, idx: usize) -> &str {
        self.line_comments.get(idx).map_or("", String::as_str)
    }

    fn rule_unsafe_header(&self, findings: &mut Vec<Finding>) {
        if !self.profile.crate_root {
            return;
        }
        // #![forbid(unsafe_code)] / #![deny(unsafe_code)] anywhere in
        // the significant stream (inner attributes sit near the top).
        let mut found = false;
        for w in 0..self.sig.len() {
            if self.sig_is_punct(w, '#')
                && self.sig_is_punct(w + 1, '!')
                && self.sig_is_punct(w + 2, '[')
                && (self.sig_is_ident(w + 3, "forbid") || self.sig_is_ident(w + 3, "deny"))
                && self.sig_is_punct(w + 4, '(')
                && self.sig_is_ident(w + 5, "unsafe_code")
            {
                found = true;
                break;
            }
        }
        if !found {
            self.push(
                findings,
                1,
                Rule::UnsafeHeader,
                "crate root lacks #![forbid(unsafe_code)] / #![deny(unsafe_code)]".to_string(),
            );
        }
    }

    // -- panic discipline ----------------------------------------------

    /// Identifiers that legitimately precede `[` without forming an
    /// index expression (`let [a, b] = …`, `&mut [T]`, `for [a, b] in`).
    const NON_INDEX_KEYWORDS: [&'static str; 16] = [
        "let", "mut", "ref", "in", "if", "else", "match", "while", "for", "loop", "return",
        "break", "continue", "move", "as", "where",
    ];

    fn panic_rules(&self, si: usize, token: &Token, findings: &mut Vec<Finding>) {
        match token.kind {
            TokenKind::Ident => {
                let text = self.scan.text(token);
                match text {
                    "unwrap" | "expect" if self.prev_sig_is_dot(si) => self.push(
                        findings,
                        token.line,
                        Rule::PanicArchive,
                        format!("`.{text}()` on an archive decode path"),
                    ),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                        if self.sig_is_punct(si + 1, '!') =>
                    {
                        self.push(
                            findings,
                            token.line,
                            Rule::PanicArchive,
                            format!("`{text}!` on an archive decode path"),
                        )
                    }
                    _ => {}
                }
            }
            TokenKind::Punct if self.scan.text(token).starts_with('[') => {
                if si == 0 {
                    return;
                }
                let Some(prev) = self.sig_token(si - 1) else {
                    return;
                };
                let prev_text = self.scan.text(prev);
                let indexes = match prev.kind {
                    TokenKind::Ident => !Self::NON_INDEX_KEYWORDS.contains(&prev_text),
                    TokenKind::Punct => prev_text.starts_with(')') || prev_text.starts_with(']'),
                    _ => false,
                };
                if indexes {
                    self.push(
                        findings,
                        token.line,
                        Rule::PanicArchive,
                        "slice/array index expression on an archive decode path (use .get)"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }

    fn prev_sig_is_dot(&self, si: usize) -> bool {
        si > 0
            && self
                .sig_token(si - 1)
                .is_some_and(|t| t.kind == TokenKind::Punct && self.scan.text(t) == ".")
    }

    // -- waivers -------------------------------------------------------

    fn apply_waivers(&self, findings: &mut Vec<Finding>) {
        let mut extra = Vec::new();
        for waiver in &self.waivers {
            if !waiver.parsed {
                self.push(
                    &mut extra,
                    waiver.at,
                    Rule::WaiverUnknown,
                    "malformed waiver comment (expected `lint: allow(<rule>) reason=\"…\"`)"
                        .to_string(),
                );
                continue;
            }
            for rule_id in &waiver.rules {
                if Rule::from_id(rule_id).is_none() {
                    self.push(
                        &mut extra,
                        waiver.at,
                        Rule::WaiverUnknown,
                        format!("waiver names unknown rule `{rule_id}`"),
                    );
                }
            }
            if !waiver.reason {
                self.push(
                    &mut extra,
                    waiver.at,
                    Rule::WaiverReason,
                    "waiver without a reason=\"…\"".to_string(),
                );
            }
        }
        findings.retain(|f| {
            !self
                .waivers
                .iter()
                .any(|w| w.parsed && w.target == f.line && w.rules.iter().any(|r| r == f.rule.id()))
        });
        findings.append(&mut extra);
    }
}

/// Splits the source into lines and classifies each, collecting the
/// comment text visible on every line.
fn classify_lines(scan: &Scan<'_>, line_count: usize) -> (Vec<LineClass>, Vec<String>) {
    let mut comments = vec![String::new(); line_count];
    let mut has_code = vec![false; line_count];
    let mut has_comment = vec![false; line_count];
    for token in &scan.tokens {
        let start = (token.line as usize).saturating_sub(1);
        match token.kind {
            TokenKind::LineComment | TokenKind::BlockComment => {
                let end = (scan.end_line(token) as usize).saturating_sub(1);
                let text = scan.text(token);
                for (offset, piece) in text.lines().enumerate() {
                    let idx = start + offset;
                    if idx <= end && idx < comments.len() {
                        has_comment[idx] = true;
                        comments[idx].push_str(piece);
                        comments[idx].push(' ');
                    }
                }
            }
            _ => {
                let end = (scan.end_line(token) as usize).saturating_sub(1);
                for idx in start..=end.min(has_code.len().saturating_sub(1)) {
                    has_code[idx] = true;
                }
            }
        }
    }
    let line_texts: Vec<&str> = scan.src.lines().collect();
    let classes = (0..line_count)
        .map(|idx| {
            let text = line_texts.get(idx).copied().unwrap_or("").trim_start();
            if has_code[idx] {
                if text.starts_with("#[") || text.starts_with("#![") {
                    LineClass::AttributeOnly
                } else {
                    LineClass::Code
                }
            } else if has_comment[idx] {
                LineClass::CommentOnly
            } else {
                LineClass::Blank
            }
        })
        .collect();
    (classes, comments)
}

/// Byte ranges of test-gated code: the block of any item carrying
/// `#[cfg(test)]` (or a cfg predicate mentioning `test` without
/// `not(…)`), and any `mod tests { … }` block.
fn test_regions(scan: &Scan<'_>, sig: &[usize]) -> Vec<Range<usize>> {
    let mut regions = Vec::new();
    let mut pending_at_depth: Option<i32> = None;
    let mut depth: i32 = 0;
    let mut i = 0usize;
    while i < sig.len() {
        let token = &scan.tokens[sig[i]];
        let text = scan.text(token);
        match token.kind {
            TokenKind::Punct if text == "#" => {
                // Attribute: skip to its matching ']', inspecting cfg.
                let mut j = i + 1;
                if sig
                    .get(j)
                    .is_some_and(|&t| scan.text(&scan.tokens[t]) == "!")
                {
                    j += 1;
                }
                if sig
                    .get(j)
                    .is_some_and(|&t| scan.text(&scan.tokens[t]) == "[")
                {
                    let (end, is_test_cfg) = scan_attribute(scan, sig, j);
                    if is_test_cfg {
                        pending_at_depth = Some(depth);
                    }
                    i = end;
                    continue;
                }
            }
            TokenKind::Punct if text == "{" => {
                if pending_at_depth.take().is_some() {
                    if let Some(close) = matching_brace(scan, sig, i) {
                        regions.push(token.start..scan.tokens[sig[close]].end);
                    } else {
                        regions.push(token.start..scan.src.len());
                    }
                }
                depth += 1;
            }
            TokenKind::Punct if text == "}" => depth -= 1,
            TokenKind::Punct if text == ";" && pending_at_depth == Some(depth) => {
                pending_at_depth = None;
            }
            TokenKind::Ident
                if text == "mod"
                    && sig
                        .get(i + 1)
                        .is_some_and(|&t| scan.text(&scan.tokens[t]) == "tests") =>
            {
                pending_at_depth = Some(depth);
            }
            _ => {}
        }
        i += 1;
    }
    regions
}

/// From the significant index of an attribute's `[`, returns the index
/// one past its matching `]` and whether the attribute is a test cfg.
fn scan_attribute(scan: &Scan<'_>, sig: &[usize], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut i = open;
    while i < sig.len() {
        let text = scan.text(&scan.tokens[sig[i]]);
        match text {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, saw_cfg && saw_test && !saw_not);
                }
            }
            "cfg" => saw_cfg = true,
            "test" => saw_test = true,
            "not" => saw_not = true,
            _ => {}
        }
        i += 1;
    }
    (sig.len(), false)
}

/// From the significant index of a `{`, the index of its matching `}`.
fn matching_brace(scan: &Scan<'_>, sig: &[usize], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (offset, &ti) in sig.iter().enumerate().skip(open) {
        match scan.text(&scan.tokens[ti]) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(offset);
                }
            }
            _ => {}
        }
    }
    None
}

/// Byte range of `mod <name> { … }`, if present.
fn mod_region(scan: &Scan<'_>, sig: &[usize], name: &str) -> Option<Range<usize>> {
    for i in 0..sig.len() {
        let token = &scan.tokens[sig[i]];
        if token.kind == TokenKind::Ident && scan.text(token) == "mod" {
            let is_named = sig
                .get(i + 1)
                .is_some_and(|&t| scan.text(&scan.tokens[t]) == name);
            let opens = sig
                .get(i + 2)
                .is_some_and(|&t| scan.text(&scan.tokens[t]) == "{");
            if is_named && opens {
                let close = matching_brace(scan, sig, i + 2)?;
                return Some(token.start..scan.tokens[sig[close]].end);
            }
        }
    }
    None
}

/// Extracts `lint: allow(…)` waivers from comment tokens. A trailing
/// waiver on a code line targets that line; a waiver on its own line
/// targets the next code line below it.
fn collect_waivers(scan: &Scan<'_>, line_class: &[LineClass]) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for token in &scan.tokens {
        if !matches!(token.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let body = comment_body(scan.text(token));
        let Some(directive) = body.trim_start().strip_prefix("lint:") else {
            continue;
        };
        let at = token.line;
        let line_idx = (at as usize).saturating_sub(1);
        let target = if line_class.get(line_idx) == Some(&LineClass::Code) {
            at
        } else {
            // First code line below the comment, skipping blank,
            // comment and attribute lines (so a waiver above
            // `#[allow(…)] unsafe impl …` still reaches the impl).
            let mut idx = (scan.end_line(token) as usize).saturating_sub(1) + 1;
            while idx < line_class.len()
                && matches!(
                    line_class[idx],
                    LineClass::Blank | LineClass::CommentOnly | LineClass::AttributeOnly
                )
            {
                idx += 1;
            }
            (idx + 1) as u32
        };
        match parse_waiver(directive) {
            Some((rules, reason)) => waivers.push(Waiver {
                rules,
                reason,
                at,
                target,
                parsed: true,
            }),
            None => waivers.push(Waiver {
                rules: Vec::new(),
                reason: false,
                at,
                target,
                parsed: false,
            }),
        }
    }
    waivers
}

/// Strips comment delimiters: `//`, `///`, `//!`, `/* … */`.
fn comment_body(text: &str) -> &str {
    let text = text
        .strip_prefix("//")
        .map(|t| t.trim_start_matches(['/', '!']))
        .unwrap_or(text);
    let text = text.strip_prefix("/*").unwrap_or(text);
    text.strip_suffix("*/").unwrap_or(text)
}

/// Parses `allow(rule-a, rule-b) reason="…"` → (rules, has_reason).
fn parse_waiver(directive: &str) -> Option<(Vec<String>, bool)> {
    let rest = directive.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest
        .get(..close)?
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let tail = rest.get(close + 1..)?.trim_start();
    let reason = match tail.strip_prefix("reason=\"") {
        Some(quoted) => quoted
            .find('"')
            .is_some_and(|end| !quoted.get(..end).unwrap_or("").trim().is_empty()),
        None => false,
    };
    Some((rules, reason))
}
