//! A hand-rolled Rust token scanner.
//!
//! The linter's rules are token-level, so the scanner's only job is to
//! classify every byte of a source file correctly enough that rule
//! matching never fires inside a comment or a string literal and never
//! misses code because a literal or comment was left "open". It
//! understands:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`),
//! * string literals with escapes, byte strings (`b"…"`),
//! * raw strings with any number of hashes (`r"…"`, `r##"…"##`,
//!   `br#"…"#`) and raw identifiers (`r#match`),
//! * character literals vs. lifetimes (`'x'`, `'\n'`, `b'x'` vs `'a`,
//!   `'static`),
//! * identifiers, numbers, and single-character punctuation.
//!
//! It is deliberately *not* a full lexer: numbers are approximate
//! (`1..3` may lex as one number token and a dot) and multi-character
//! operators come out as single punctuation tokens. None of that
//! matters for the rules, which only look at identifiers, `::` paths,
//! `!` macro bangs, and bracket adjacency. What does matter — and what
//! the scanner guarantees (property-tested on arbitrary byte soup) —
//! is that token spans are in-bounds, non-overlapping, strictly
//! ordered, and aligned to UTF-8 character boundaries, and that the
//! scanner never panics on malformed input.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#match`).
    Ident,
    /// Numeric literal (approximate: suffixes and float dots included).
    Number,
    /// Single punctuation character.
    Punct,
    /// `// …` to end of line (doc comments included).
    LineComment,
    /// `/* … */`, nesting respected (doc comments included).
    BlockComment,
    /// `"…"` or `b"…"` with escapes.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##` — no escapes, hash-delimited.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `'ident` in type position.
    Lifetime,
}

/// One classified span of the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte (inclusive, char-aligned).
    pub start: usize,
    /// Byte offset one past the last byte (exclusive, char-aligned).
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
}

/// A scanned file: the source plus its token stream.
#[derive(Debug)]
pub struct Scan<'a> {
    /// The source text the tokens index into.
    pub src: &'a str,
    /// All tokens in source order (whitespace is not tokenized).
    pub tokens: Vec<Token>,
}

impl<'a> Scan<'a> {
    /// The text of one token.
    pub fn text(&self, token: &Token) -> &'a str {
        self.src.get(token.start..token.end).unwrap_or("")
    }

    /// 1-based line of the token's last byte (block comments and
    /// string literals span lines).
    pub fn end_line(&self, token: &Token) -> u32 {
        let newlines = self.text(token).bytes().filter(|&b| b == b'\n').count();
        token.line + newlines as u32
    }
}

/// Tokenizes `src`. Never panics; unterminated literals and comments
/// run to end of input.
pub fn scan(src: &str) -> Scan<'_> {
    let mut lexer = Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    };
    lexer.run();
    Scan {
        src,
        tokens: lexer.tokens,
    }
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl<'a> Lexer<'a> {
    fn peek(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    /// Advances past exactly one char (UTF-8 aware), counting newlines.
    fn bump(&mut self) {
        if let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                self.line += 1;
            }
            let width = match self.src.get(self.pos..) {
                Some(rest) => rest.chars().next().map_or(1, char::len_utf8),
                None => 1, // mid-char position cannot happen; defensive
            };
            self.pos += width;
        }
    }

    /// Advances past `n` ASCII bytes known to contain no newline.
    fn bump_ascii(&mut self, n: usize) {
        self.pos += n;
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        debug_assert!(start < self.pos);
        self.tokens.push(Token {
            kind,
            start,
            end: self.pos,
            line,
        });
    }

    fn run(&mut self) {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.bump();
                    }
                    self.push(TokenKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment(start, line);
                }
                b'"' => {
                    self.string_literal(TokenKind::Str, start, line);
                }
                b'\'' => {
                    self.char_or_lifetime(start, line);
                }
                b'r' | b'b' => {
                    self.maybe_prefixed_literal(start, line);
                }
                _ if is_ident_start(b) => {
                    self.ident(start, line);
                }
                _ if b.is_ascii_digit() => {
                    self.number(start, line);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
    }

    /// At `/*`: consumes the comment, respecting nesting.
    fn block_comment(&mut self, start: usize, line: u32) {
        self.bump_ascii(2);
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump_ascii(2);
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump_ascii(2);
            } else {
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, start, line);
    }

    /// At the opening quote of a (byte) string: consumes through the
    /// closing quote, honoring `\` escapes.
    fn string_literal(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.bump(); // opening "
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump();
                    self.bump(); // the escaped char (any, incl. ")
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
        self.push(kind, start, line);
    }

    /// At `'`: a char literal (`'x'`, `'\n'`) or a lifetime (`'a`).
    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        let mut rest = self.src.get(self.pos + 1..).unwrap_or("").chars();
        let first = rest.next();
        let second = rest.next();
        match (first, second) {
            // '\…' — escaped char literal: scan to the closing quote.
            (Some('\\'), _) => {
                self.bump(); // '
                self.bump(); // backslash
                self.bump(); // escaped char
                while self.pos < self.bytes.len() {
                    let b = self.bytes[self.pos];
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
                self.push(TokenKind::Char, start, line);
            }
            // 'x' — plain one-char literal.
            (Some(_), Some('\'')) => {
                self.bump();
                self.bump();
                self.bump();
                self.push(TokenKind::Char, start, line);
            }
            // 'ident — lifetime.
            _ => {
                self.bump(); // '
                while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                    self.bump_ascii(1);
                }
                self.push(TokenKind::Lifetime, start, line);
            }
        }
    }

    /// At `r` or `b`: raw strings (`r"…"`, `r##"…"##`), byte strings
    /// (`b"…"`, `br#"…"#`), byte chars (`b'x'`), raw identifiers
    /// (`r#match`), or a plain identifier starting with `r`/`b`.
    fn maybe_prefixed_literal(&mut self, start: usize, line: u32) {
        let b0 = self.bytes[self.pos];
        let mut prefix = 1usize; // bytes of r/b/br prefix
        if b0 == b'b' && self.peek(1) == Some(b'r') {
            prefix = 2;
        }
        let raw = b0 == b'r' || prefix == 2;
        if raw {
            // Count hashes after the r.
            let mut hashes = 0usize;
            while self.peek(prefix + hashes) == Some(b'#') {
                hashes += 1;
            }
            if self.peek(prefix + hashes) == Some(b'"') {
                self.bump_ascii(prefix + hashes + 1);
                self.raw_string_tail(hashes, start, line);
                return;
            }
            if b0 == b'r' && hashes >= 1 && self.peek(prefix + hashes).is_some_and(is_ident_start) {
                // Raw identifier r#match: token text keeps the prefix.
                self.bump_ascii(prefix + hashes);
                while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                    self.bump_ascii(1);
                }
                self.push(TokenKind::Ident, start, line);
                return;
            }
        }
        if b0 == b'b' {
            if self.peek(1) == Some(b'"') {
                self.bump_ascii(1);
                self.string_literal(TokenKind::Str, start, line);
                return;
            }
            if self.peek(1) == Some(b'\'') {
                // b'x' is always a literal, never a lifetime.
                self.bump_ascii(1);
                self.bump(); // '
                while self.pos < self.bytes.len() {
                    let c = self.bytes[self.pos];
                    if c == b'\\' {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    self.bump();
                    if c == b'\'' {
                        break;
                    }
                }
                self.push(TokenKind::Char, start, line);
                return;
            }
        }
        self.ident(start, line);
    }

    /// After the opening quote of a raw string with `hashes` hashes:
    /// consumes through `"` followed by that many hashes.
    fn raw_string_tail(&mut self, hashes: usize, start: usize, line: u32) {
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(1 + matched) == Some(b'#') {
                    matched += 1;
                }
                if matched == hashes {
                    self.bump_ascii(1 + hashes);
                    self.push(TokenKind::RawStr, start, line);
                    return;
                }
            }
            self.bump();
        }
        self.push(TokenKind::RawStr, start, line);
    }

    fn ident(&mut self, start: usize, line: u32) {
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.bump_ascii(1);
        }
        self.push(TokenKind::Ident, start, line);
    }

    /// Approximate numeric literal: digits/letters/underscores plus a
    /// dot when followed by a digit (so `1..3` leaves the range dots
    /// alone but `1.5e-3` stays one token up to the `-`).
    fn number(&mut self, start: usize, line: u32) {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            let dot_in_float = b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit());
            if is_ident_continue(b) || dot_in_float {
                self.bump_ascii(1);
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        let scan = scan(src);
        scan.tokens
            .iter()
            .map(|t| (t.kind, scan.text(t).to_string()))
            .collect()
    }

    #[test]
    fn classifies_comments_strings_and_code() {
        let got = kinds("let x = \"// not a comment\"; // real comment");
        assert_eq!(
            got,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Str, "\"// not a comment\"".into()),
                (TokenKind::Punct, ";".into()),
                (TokenKind::LineComment, "// real comment".into()),
            ]
        );
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let got = kinds("/* outer /* inner */ still */ code");
        assert_eq!(
            got,
            vec![
                (
                    TokenKind::BlockComment,
                    "/* outer /* inner */ still */".into()
                ),
                (TokenKind::Ident, "code".into()),
            ]
        );
    }

    #[test]
    fn raw_strings_do_not_leak_state() {
        let got = kinds(r####"let s = r#"quote " and // slashes"#; after()"####);
        assert!(got.contains(&(
            TokenKind::RawStr,
            r###"r#"quote " and // slashes"#"###.into()
        )));
        assert!(got.contains(&(TokenKind::Ident, "after".into())));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let got = kinds(r"fn f<'a>(x: &'a str) { let c = 'x'; let n = '\n'; }");
        let lifetimes: Vec<_> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = got.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{got:?}");
        assert_eq!(chars.len(), 2, "{got:?}");
    }

    #[test]
    fn byte_literals_and_raw_idents() {
        let got = kinds(r##"let b = b'x'; let s = b"bytes"; let r = r#match;"##);
        assert!(got.contains(&(TokenKind::Char, "b'x'".into())));
        assert!(got.contains(&(TokenKind::Str, "b\"bytes\"".into())));
        assert!(got.contains(&(TokenKind::Ident, "r#match".into())));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let got = kinds(r#"let s = "a \" b"; next"#);
        assert!(got.contains(&(TokenKind::Str, r#""a \" b""#.into())));
        assert!(got.contains(&(TokenKind::Ident, "next".into())));
    }

    #[test]
    fn lines_are_tracked() {
        let scan = scan("a\nb\n  c");
        let lines: Vec<u32> = scan.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }
}
