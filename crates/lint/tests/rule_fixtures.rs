//! Fixture tests: every rule fires on a known-bad snippet and stays
//! silent on the sanctioned alternative, under the same path-derived
//! scoping the workspace pass uses.

use loadbal_lint::{lint_file, Rule};

/// Rule IDs firing for `src` at `path`, in output order.
fn fired(path: &str, src: &str) -> Vec<&'static str> {
    lint_file(path, src)
        .into_iter()
        .map(|f| f.rule.id())
        .collect()
}

const CORE: &str = "crates/core/src/fixture.rs";
const ARCHIVE: &str = "crates/archive/src/fixture.rs";

// ---------------------------------------------------------------------
// det-hash
// ---------------------------------------------------------------------

#[test]
fn det_hash_fires_on_hashmap_in_core() {
    let findings = lint_file(CORE, "use std::collections::HashMap;\n");
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, Rule::DetHash);
    assert_eq!(findings[0].line, 1);
    assert_eq!(findings[0].file, CORE);
}

#[test]
fn det_hash_silent_on_btreemap() {
    assert!(fired(CORE, "use std::collections::BTreeMap;\n").is_empty());
}

#[test]
fn det_hash_silent_in_cfg_test_module() {
    // The shape every workspace crate actually uses: a test-only
    // HashSet checking uniqueness inside #[cfg(test)] mod tests.
    let src = "pub fn real() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   #[test]\n\
                   fn unique() {\n\
                       let s: std::collections::HashSet<u32> = [1, 2].into_iter().collect();\n\
                       assert_eq!(s.len(), 2);\n\
                   }\n\
               }\n";
    assert!(fired(CORE, src).is_empty());
}

#[test]
fn det_hash_fires_after_test_module_closes() {
    let src = "#[cfg(test)]\n\
               mod tests {\n\
                   fn ok() { let _ = std::collections::HashSet::<u8>::new(); }\n\
               }\n\
               fn leak() { let _ = std::collections::HashSet::<u8>::new(); }\n";
    assert_eq!(fired(CORE, src), vec!["det-hash"]);
}

#[test]
fn det_rules_do_not_apply_to_bench_or_lint_crates() {
    assert!(fired(
        "crates/bench/src/fixture.rs",
        "use std::collections::HashMap;\n"
    )
    .is_empty());
    assert!(fired(
        "crates/lint/src/fixture.rs",
        "use std::collections::HashMap;\n"
    )
    .is_empty());
}

#[test]
fn det_rules_do_not_apply_to_integration_tests_or_examples() {
    assert!(fired("tests/fixture.rs", "use std::time::Instant;\n").is_empty());
    assert!(fired(
        "examples/fixture.rs",
        "fn f() { let _ = std::env::args(); }\n"
    )
    .is_empty());
}

// ---------------------------------------------------------------------
// det-time
// ---------------------------------------------------------------------

#[test]
fn det_time_fires_on_instant_now() {
    assert_eq!(
        fired(
            CORE,
            "fn f() -> u128 { std::time::Instant::now().elapsed().as_nanos() }\n"
        ),
        vec!["det-time"]
    );
}

#[test]
fn det_time_silent_inside_comments_and_strings() {
    let src = "// Instant::now() would break reproducibility.\n\
               /* SystemTime too */\n\
               fn f() -> &'static str { \"Instant::now()\" }\n";
    assert!(fired(CORE, src).is_empty());
}

// ---------------------------------------------------------------------
// det-env
// ---------------------------------------------------------------------

#[test]
fn det_env_fires_on_std_env() {
    assert_eq!(
        fired(
            CORE,
            "fn f() -> Vec<String> { std::env::args().collect() }\n"
        ),
        vec!["det-env"]
    );
}

#[test]
fn det_env_fires_on_env_macro() {
    assert_eq!(
        fired(CORE, "const DIR: &str = env!(\"CARGO_MANIFEST_DIR\");\n"),
        vec!["det-env"]
    );
}

#[test]
fn det_env_silent_on_doc_comment_mention() {
    assert!(fired(CORE, "//! let dir = std::env::temp_dir();\n").is_empty());
}

// ---------------------------------------------------------------------
// det-entropy
// ---------------------------------------------------------------------

#[test]
fn det_entropy_fires_on_thread_rng_and_thread_current() {
    assert_eq!(
        fired(CORE, "fn f() { let _ = rand::thread_rng(); }\n"),
        vec!["det-entropy"]
    );
    assert_eq!(
        fired(CORE, "fn f() { let _ = std::thread::current().id(); }\n"),
        vec!["det-entropy"]
    );
}

#[test]
fn det_entropy_silent_on_seeded_rng() {
    assert!(fired(
        CORE,
        "fn f(seed: u64) { let _ = rand::rngs::StdRng::seed_from_u64(seed); }\n"
    )
    .is_empty());
}

// ---------------------------------------------------------------------
// unsafe-pool / unsafe-safety
// ---------------------------------------------------------------------

#[test]
fn unsafe_outside_pool_fires_everywhere() {
    let src = "// SAFETY: fixture.\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert_eq!(
        fired("crates/grid/src/fixture.rs", src),
        vec!["unsafe-pool"]
    );
}

#[test]
fn unsafe_inside_mod_pool_of_sweep_rs_is_allowed() {
    let src = "mod pool {\n\
               \x20   // SAFETY: fixture argument.\n\
               \x20   pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n\
               }\n";
    assert!(fired("crates/core/src/sweep.rs", src).is_empty());
}

#[test]
fn unsafe_outside_mod_pool_in_sweep_rs_still_fires() {
    let src = "mod pool {}\n\
               // SAFETY: fixture.\n\
               fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    assert_eq!(fired("crates/core/src/sweep.rs", src), vec!["unsafe-pool"]);
}

#[test]
fn unsafe_without_safety_comment_fires() {
    let src = "mod pool {\n\
               \x20   pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n\
               }\n";
    assert_eq!(
        fired("crates/core/src/sweep.rs", src),
        vec!["unsafe-safety"]
    );
}

#[test]
fn adjacent_impls_need_their_own_safety_comments() {
    let src = "mod pool {\n\
               \x20   struct T(*const u8);\n\
               \x20   // SAFETY: fixture.\n\
               \x20   unsafe impl Send for T {}\n\
               \x20   unsafe impl Sync for T {}\n\
               }\n";
    let findings = lint_file("crates/core/src/sweep.rs", src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::UnsafeSafety);
    assert_eq!(
        findings[0].line, 5,
        "the Sync impl, not the commented Send one"
    );
}

#[test]
fn unsafe_fn_with_safety_doc_section_is_accepted() {
    let src = "mod pool {\n\
               \x20   /// Reads a byte.\n\
               \x20   ///\n\
               \x20   /// # Safety\n\
               \x20   ///\n\
               \x20   /// `p` must be valid.\n\
               \x20   pub unsafe fn f(p: *const u8) -> u8 { unsafe { *p } }\n\
               }\n";
    assert!(fired("crates/core/src/sweep.rs", src).is_empty());
}

// ---------------------------------------------------------------------
// unsafe-header
// ---------------------------------------------------------------------

#[test]
fn crate_root_without_unsafe_header_fires() {
    assert_eq!(
        fired("crates/grid/src/lib.rs", "pub fn f() {}\n"),
        vec!["unsafe-header"]
    );
}

#[test]
fn forbid_and_deny_headers_both_satisfy() {
    assert!(fired(
        "crates/grid/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() {}\n"
    )
    .is_empty());
    assert!(fired(
        "crates/grid/src/lib.rs",
        "#![deny(unsafe_code)]\npub fn f() {}\n"
    )
    .is_empty());
}

#[test]
fn non_root_files_are_not_header_checked() {
    assert!(fired("crates/grid/src/series.rs", "pub fn f() {}\n").is_empty());
}

// ---------------------------------------------------------------------
// panic-archive
// ---------------------------------------------------------------------

#[test]
fn panic_archive_fires_on_unwrap_expect_panic_and_indexing() {
    assert_eq!(
        fired(
            ARCHIVE,
            "fn f(v: Vec<u8>) -> u8 { v.first().copied().unwrap() }\n"
        ),
        vec!["panic-archive"]
    );
    assert_eq!(
        fired(
            ARCHIVE,
            "fn f(v: Vec<u8>) -> u8 { v.first().copied().expect(\"byte\") }\n"
        ),
        vec!["panic-archive"]
    );
    assert_eq!(
        fired(ARCHIVE, "fn f() { panic!(\"corrupt\"); }\n"),
        vec!["panic-archive"]
    );
    assert_eq!(
        fired(ARCHIVE, "fn f(v: &[u8]) -> u8 { v[0] }\n"),
        vec!["panic-archive"]
    );
}

#[test]
fn panic_archive_silent_on_typed_alternatives() {
    let src = "fn f(v: &[u8]) -> Option<u8> { v.get(0).copied() }\n\
               fn g(v: &[u8]) -> u8 { v.first().copied().unwrap_or(0) }\n\
               fn h<T>(m: &std::sync::Mutex<T>) { let _ = m.lock().unwrap_or_else(|p| p.into_inner()); }\n";
    assert!(fired(ARCHIVE, src).is_empty());
}

#[test]
fn panic_archive_silent_on_slice_patterns_and_types() {
    let src = "fn f(v: &[u8]) -> u8 {\n\
               \x20   let [a, _b]: [u8; 2] = [1, 2];\n\
               \x20   if let [x, ..] = v { *x } else { a }\n\
               }\n";
    assert!(fired(ARCHIVE, src).is_empty());
}

#[test]
fn panic_archive_scope_excludes_other_crates_tests_and_the_cli() {
    let src = "fn f(v: Vec<u8>) -> u8 { v.first().copied().unwrap() }\n";
    assert!(fired("crates/core/src/fixture.rs", src).is_empty());
    assert!(fired("crates/archive/tests/fixture.rs", src).is_empty());
    assert!(fired("crates/archive/src/bin/season_inspect.rs", src).is_empty());
    let test_mod = "#[cfg(test)]\nmod tests {\n    fn f(v: Vec<u8>) -> u8 { v.first().copied().unwrap() }\n}\n";
    assert!(fired(ARCHIVE, test_mod).is_empty());
}

// ---------------------------------------------------------------------
// waivers
// ---------------------------------------------------------------------

#[test]
fn reasoned_waiver_suppresses_the_next_code_line() {
    let src = "// lint: allow(det-env) reason=\"CLI entry point reads its own argv\"\n\
               fn f() -> Vec<String> { std::env::args().collect() }\n";
    assert!(fired(CORE, src).is_empty());
}

#[test]
fn trailing_waiver_suppresses_its_own_line() {
    let src =
        "fn f() -> Vec<String> { std::env::args().collect() } // lint: allow(det-env) reason=\"fixture\"\n";
    assert!(fired(CORE, src).is_empty());
}

#[test]
fn waiver_skips_attribute_lines_to_reach_the_item() {
    let src = "// SAFETY: fixture.\n\
               // lint: allow(unsafe-pool) reason=\"fixture trait impl\"\n\
               #[allow(unsafe_code)]\n\
               unsafe impl Send for () {}\n";
    assert!(fired("crates/grid/src/fixture.rs", src).is_empty());
}

#[test]
fn waiver_without_reason_is_itself_a_finding() {
    let src = "// lint: allow(det-env)\n\
               fn f() -> Vec<String> { std::env::args().collect() }\n";
    assert_eq!(fired(CORE, src), vec!["waiver-reason"]);
}

#[test]
fn waiver_for_unknown_rule_is_a_finding_and_suppresses_nothing() {
    let src = "// lint: allow(no-such-rule) reason=\"typo\"\n\
               fn f() -> Vec<String> { std::env::args().collect() }\n";
    assert_eq!(fired(CORE, src), vec!["waiver-unknown", "det-env"]);
}

#[test]
fn waiver_only_suppresses_the_named_rule() {
    let src = "// lint: allow(det-time) reason=\"wrong rule\"\n\
               fn f() -> Vec<String> { std::env::args().collect() }\n";
    assert_eq!(fired(CORE, src), vec!["det-env"]);
}

#[test]
fn one_waiver_can_name_several_rules() {
    let src = "// lint: allow(det-env, det-time) reason=\"fixture does both\"\n\
               fn f() -> u128 { let _ = std::env::args(); std::time::Instant::now().elapsed().as_nanos() }\n";
    assert!(fired(CORE, src).is_empty());
}

// ---------------------------------------------------------------------
// scanner-state interactions the rules depend on
// ---------------------------------------------------------------------

#[test]
fn raw_strings_do_not_swallow_following_code() {
    let src = "fn f(v: Vec<u8>) -> u8 {\n\
               \x20   let _s = r#\"quote \" and // comment markers\"#;\n\
               \x20   v.first().copied().unwrap()\n\
               }\n";
    assert_eq!(fired(ARCHIVE, src), vec!["panic-archive"]);
}

#[test]
fn nested_block_comments_do_not_hide_code_after_them() {
    let src = "/* outer /* inner */ still comment */\n\
               fn f(v: Vec<u8>) -> u8 { v.first().copied().unwrap() }\n";
    assert_eq!(fired(ARCHIVE, src), vec!["panic-archive"]);
}

#[test]
fn cfg_not_test_is_not_a_test_gate() {
    let src = "#[cfg(not(test))]\n\
               mod real {\n\
               \x20   pub fn f() { let _ = std::collections::HashSet::<u8>::new(); }\n\
               }\n";
    assert_eq!(fired(CORE, src), vec!["det-hash"]);
}
