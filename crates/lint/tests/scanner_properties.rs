//! Property tests for the token scanner: it must never panic on
//! arbitrary byte soup, every span it emits must be well-formed, and
//! string/comment state must never leak past a complete token.

use loadbal_lint::scanner::{scan, TokenKind};
use proptest::prelude::*;

/// Every span invariant the rules layer depends on. Panics (via the
/// returned message) name the first violated invariant.
fn check_span_invariants(src: &str) -> Result<(), String> {
    let scanned = scan(src);
    let mut prev_end = 0usize;
    let mut prev_line = 1u32;
    for (i, t) in scanned.tokens.iter().enumerate() {
        if t.start >= t.end {
            return Err(format!(
                "token {i}: empty or inverted span {}..{}",
                t.start, t.end
            ));
        }
        if t.start < prev_end {
            return Err(format!(
                "token {i}: overlaps previous (start {} < {prev_end})",
                t.start
            ));
        }
        if t.end > src.len() {
            return Err(format!(
                "token {i}: end {} out of bounds (len {})",
                t.end,
                src.len()
            ));
        }
        if !src.is_char_boundary(t.start) || !src.is_char_boundary(t.end) {
            return Err(format!(
                "token {i}: span {}..{} not char-aligned",
                t.start, t.end
            ));
        }
        if t.line < prev_line {
            return Err(format!(
                "token {i}: line {} went backwards from {prev_line}",
                t.line
            ));
        }
        let newlines_before = src[..t.start].bytes().filter(|&b| b == b'\n').count() as u32;
        if t.line != newlines_before + 1 {
            return Err(format!(
                "token {i}: line {} but {} newlines precede offset {}",
                t.line, newlines_before, t.start
            ));
        }
        // Whitespace is never tokenized, so the gap between tokens
        // must be pure whitespace.
        let gap = &src[prev_end..t.start];
        if !gap.chars().all(char::is_whitespace) {
            return Err(format!("token {i}: non-whitespace gap {gap:?} before it"));
        }
        prev_end = t.end;
        prev_line = scanned.end_line(t);
    }
    let tail = &src[prev_end..];
    if !tail.chars().all(char::is_whitespace) {
        return Err(format!("unscanned non-whitespace tail {tail:?}"));
    }
    Ok(())
}

/// Complete, self-delimiting source fragments. Concatenating any of
/// these (whitespace-separated) yields input where no literal or
/// comment state may leak into the next fragment.
const COMPLETE_FRAGMENTS: &[&str] = &[
    "ident",
    "let",
    "0xff_u32",
    "1.5e3",
    "\"str with \\\" escape and // marker\"",
    "r#\"raw \" quote and /* marker \"#",
    "r\"plain raw\"",
    "br##\"byte raw \"# almost\"##",
    "b\"bytes \\\" here\"",
    "'x'",
    "'\\n'",
    "'\\''",
    "b'q'",
    "'static",
    "'a",
    "r#match",
    "/* block /* nested */ comment */",
    "// line comment\n",
    "#[cfg(test)]",
    "::",
    "{ } ( ) [ ]",
    "! . ; , -> =>",
];

/// Fragments that may legitimately swallow everything after them
/// (unterminated literals/comments run to end of input, by design).
const OPEN_FRAGMENTS: &[&str] = &[
    "\"unterminated",
    "r#\"unterminated raw",
    "/* unterminated block",
    "b\"open bytes",
];

fn join_fragments(indices: &[usize], table: &[&str]) -> String {
    let mut out = String::new();
    for &i in indices {
        out.push_str(table[i % table.len()]);
        out.push(' ');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The scanner neither panics nor emits malformed spans on
    /// arbitrary (lossily decoded) byte soup.
    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        if let Err(msg) = check_span_invariants(&src) {
            prop_assert!(false, "{msg} on {src:?}");
        }
    }

    /// Same guarantee on inputs biased toward the scanner's tricky
    /// state transitions: quote/hash/backslash/comment-marker salads.
    #[test]
    fn delimiter_soup_never_panics(
        picks in prop::collection::vec(0usize..14, 0..96),
    ) {
        const ALPHABET: &[&str] = &[
            "\"", "'", "\\", "#", "r", "b", "br", "//", "/*", "*/", "\n", "x", "r#", " ",
        ];
        let src: String = picks.iter().map(|&i| ALPHABET[i % ALPHABET.len()]).collect();
        if let Err(msg) = check_span_invariants(&src) {
            prop_assert!(false, "{msg} on {src:?}");
        }
    }

    /// The whole rules layer (scanning + classification + waiver
    /// parsing) never panics either, whatever the file contents.
    #[test]
    fn lint_file_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..384),
        profile in 0usize..4,
    ) {
        let src = String::from_utf8_lossy(&bytes);
        let path = [
            "crates/core/src/soup.rs",
            "crates/archive/src/soup.rs",
            "crates/core/src/sweep.rs",
            "crates/grid/src/lib.rs",
        ][profile];
        let _ = loadbal_lint::lint_file(path, &src);
    }

    /// No false state leak: after any sequence of *complete* tokens, a
    /// sentinel identifier still scans as code — never as part of a
    /// string, comment, char, or lifetime.
    #[test]
    fn complete_tokens_never_swallow_the_sentinel(
        picks in prop::collection::vec(0usize..COMPLETE_FRAGMENTS.len(), 0..24),
    ) {
        let mut src = join_fragments(&picks, COMPLETE_FRAGMENTS);
        src.push_str("\nsentinel_zz9");
        let scanned = scan(&src);
        let sentinel: Vec<_> = scanned
            .tokens
            .iter()
            .filter(|t| scanned.text(t) == "sentinel_zz9")
            .collect();
        prop_assert_eq!(sentinel.len(), 1, "sentinel lost in {:?}", src);
        prop_assert_eq!(sentinel[0].kind, TokenKind::Ident);
        // And no literal/comment token may contain it.
        for t in &scanned.tokens {
            if matches!(
                t.kind,
                TokenKind::Str | TokenKind::RawStr | TokenKind::LineComment | TokenKind::BlockComment
            ) {
                prop_assert!(
                    !scanned.text(t).contains("sentinel_zz9"),
                    "sentinel swallowed by {:?} in {:?}",
                    t.kind,
                    src
                );
            }
        }
    }

    /// Unterminated literals are the one sanctioned swallow: they run
    /// to end of input but still satisfy every span invariant.
    #[test]
    fn open_fragments_swallow_cleanly(
        picks in prop::collection::vec(0usize..COMPLETE_FRAGMENTS.len(), 0..12),
        open in 0usize..OPEN_FRAGMENTS.len(),
    ) {
        let mut src = join_fragments(&picks, COMPLETE_FRAGMENTS);
        src.push_str(OPEN_FRAGMENTS[open]);
        src.push_str(" trailing_txt");
        if let Err(msg) = check_span_invariants(&src) {
            prop_assert!(false, "{msg} on {src:?}");
        }
        // The final token reaches end of input.
        let scanned = scan(&src);
        let last = scanned.tokens.last().expect("open literal yields a token");
        prop_assert_eq!(last.end, src.len());
    }
}

#[test]
fn empty_and_whitespace_inputs_scan_to_nothing() {
    assert!(scan("").tokens.is_empty());
    assert!(scan(" \t\r\n \n").tokens.is_empty());
    check_span_invariants("").unwrap();
    check_span_invariants("  \n\t").unwrap();
}

#[test]
fn multibyte_utf8_stays_char_aligned() {
    let src = "let α = \"héllo — ß\"; // cömment\nlet 你 = '好';";
    check_span_invariants(src).unwrap();
}
