//! The agent trait and the context handed to agent callbacks.

use crate::clock::{SimDuration, SimTime};
use crate::event::Envelope;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an agent within one simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct AgentId(pub u64);

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent-{}", self.0)
    }
}

/// A timer token, echoed back in [`Agent::on_timer`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimerToken(pub u64);

/// Behaviour of one simulated agent over messages of type `M`.
///
/// All callbacks receive a [`Context`] through which the agent observes
/// virtual time, draws deterministic randomness and emits messages or
/// timers. Default implementations do nothing, so minimal agents
/// implement only [`Agent::on_message`].
pub trait Agent<M>: 'static {
    /// Called once when the simulation starts.
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Called for each delivered message.
    fn on_message(&mut self, from: AgentId, msg: M, ctx: &mut Context<'_, M>);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, M>) {
        let _ = (token, ctx);
    }
}

/// Effects requested by an agent during a callback.
#[derive(Debug)]
pub(crate) enum Effect<M> {
    Send(Envelope<M>),
    Timer {
        token: TimerToken,
        after: SimDuration,
    },
    Halt,
}

/// The execution context passed to agent callbacks.
///
/// Sending is *buffered*: messages are queued and scheduled by the
/// runtime after the callback returns, so re-entrancy is impossible and
/// delivery order is fully determined by the event queue.
pub struct Context<'a, M> {
    pub(crate) self_id: AgentId,
    pub(crate) now: SimTime,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) effects: Vec<Effect<M>>,
}

impl<'a, M> Context<'a, M> {
    /// The agent's own id.
    pub fn self_id(&self) -> AgentId {
        self.self_id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic per-simulation random number generator.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Queues a message to another agent (or to itself).
    pub fn send(&mut self, to: AgentId, msg: M) {
        self.effects.push(Effect::Send(Envelope {
            from: self.self_id,
            to,
            msg,
        }));
    }

    /// Queues the same message to many recipients.
    pub fn broadcast(&mut self, recipients: &[AgentId], msg: M)
    where
        M: Clone,
    {
        for &to in recipients {
            self.send(to, msg.clone());
        }
    }

    /// Requests a timer callback `after` ticks from now.
    pub fn set_timer(&mut self, token: TimerToken, after: SimDuration) {
        self.effects.push(Effect::Timer { token, after });
    }

    /// Requests the whole simulation to halt after this callback (used by
    /// coordinator agents when a negotiation concludes).
    pub fn halt(&mut self) {
        self.effects.push(Effect::Halt);
    }
}

impl<M> fmt::Debug for Context<'_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("self_id", &self.self_id)
            .field("now", &self.now)
            .field("pending_effects", &self.effects.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn context(rng: &mut StdRng) -> Context<'_, u32> {
        Context {
            self_id: AgentId(7),
            now: SimTime::from_ticks(5),
            rng,
            effects: Vec::new(),
        }
    }

    #[test]
    fn send_buffers_envelopes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = context(&mut rng);
        ctx.send(AgentId(1), 42);
        ctx.send(AgentId(2), 43);
        assert_eq!(ctx.effects.len(), 2);
        match &ctx.effects[0] {
            Effect::Send(env) => {
                assert_eq!(env.from, AgentId(7));
                assert_eq!(env.to, AgentId(1));
                assert_eq!(env.msg, 42);
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    fn broadcast_clones_to_all() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = context(&mut rng);
        ctx.broadcast(&[AgentId(1), AgentId(2), AgentId(3)], 9);
        assert_eq!(ctx.effects.len(), 3);
    }

    #[test]
    fn timer_and_halt_effects() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = context(&mut rng);
        ctx.set_timer(TimerToken(1), SimDuration::from_ticks(10));
        ctx.halt();
        assert!(matches!(
            ctx.effects[0],
            Effect::Timer {
                token: TimerToken(1),
                ..
            }
        ));
        assert!(matches!(ctx.effects[1], Effect::Halt));
    }

    #[test]
    fn accessors() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ctx = context(&mut rng);
        assert_eq!(ctx.self_id(), AgentId(7));
        assert_eq!(ctx.now(), SimTime::from_ticks(5));
        let _ = ctx.rng();
        assert!(
            format!("{ctx:?}").contains("agent-7") || format!("{ctx:?}").contains("AgentId(7)")
        );
    }

    #[test]
    fn agent_id_display() {
        assert_eq!(AgentId(3).to_string(), "agent-3");
    }
}
