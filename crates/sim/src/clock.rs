//! Virtual time.
//!
//! Simulation time is measured in abstract *ticks* (the experiments treat
//! one tick as one millisecond of wall-clock communication time, but
//! nothing depends on that interpretation).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw ticks.
    pub fn from_ticks(ticks: u64) -> SimTime {
        SimTime(ticks)
    }

    /// Raw tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier` (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw ticks.
    pub fn from_ticks(ticks: u64) -> SimDuration {
        SimDuration(ticks)
    }

    /// Raw tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    /// Saturating difference.
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ticks(10);
        let d = SimDuration::from_ticks(5);
        assert_eq!(t + d, SimTime::from_ticks(15));
        assert_eq!((t + d) - t, d);
        assert_eq!(t - (t + d), SimDuration::ZERO, "saturating");
        assert_eq!(d + d, SimDuration::from_ticks(10));
    }

    #[test]
    fn add_assign() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_ticks(7);
        assert_eq!(t.ticks(), 7);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ticks(1) < SimTime::from_ticks(2));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_ticks(3).to_string(), "t=3");
        assert_eq!(SimDuration::from_ticks(3).to_string(), "3 ticks");
    }
}
