//! The event queue: a total order over scheduled deliveries and timers.

use crate::agent::{AgentId, TimerToken};
use crate::clock::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub from: AgentId,
    /// Recipient.
    pub to: AgentId,
    /// Payload.
    pub msg: M,
}

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind<M> {
    /// Deliver a message to its recipient.
    Deliver(Envelope<M>),
    /// Fire a timer at an agent.
    Timer {
        /// The agent owning the timer.
        agent: AgentId,
        /// The token passed back to the agent.
        token: TimerToken,
    },
}

/// A scheduled event. Ordering is `(time, seq)`: virtual time first, then
/// insertion sequence — two events never tie, so execution order is total
/// and deterministic. Equality and ordering deliberately ignore the
/// payload, so `M` needs no `Eq` bound (protocol messages carry `f64`
/// reward values).
#[derive(Debug, Clone)]
pub struct ScheduledEvent<M> {
    /// When the event fires.
    pub at: SimTime,
    /// Tie-breaking insertion sequence number.
    pub seq: u64,
    /// The payload.
    pub kind: EventKind<M>,
}

impl<M> PartialEq for ScheduledEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for ScheduledEvent<M> {}

impl<M> Ord for ScheduledEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<M> PartialOrd for ScheduledEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<ScheduledEvent<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<M> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules an event at `at`.
    pub fn schedule(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, kind });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<M>> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(n: u32) -> EventKind<u32> {
        EventKind::Deliver(Envelope {
            from: AgentId(0),
            to: AgentId(1),
            msg: n,
        })
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ticks(20), deliver(2));
        q.schedule(SimTime::from_ticks(10), deliver(1));
        q.schedule(SimTime::from_ticks(30), deliver(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.at.ticks())).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ticks(5);
        for n in 0..10 {
            q.schedule(t, deliver(n));
        }
        let msgs: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|e| match e.kind {
                EventKind::Deliver(env) => env.msg,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(msgs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_ticks(7), deliver(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_ticks(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn timers_and_deliveries_interleave() {
        let mut q = EventQueue::new();
        q.schedule(
            SimTime::from_ticks(2),
            EventKind::Timer {
                agent: AgentId(1),
                token: TimerToken(9),
            },
        );
        q.schedule(SimTime::from_ticks(1), deliver(5));
        assert!(matches!(q.pop().unwrap().kind, EventKind::Deliver(_)));
        assert!(matches!(q.pop().unwrap().kind, EventKind::Timer { .. }));
    }

    #[test]
    fn float_payloads_need_no_eq() {
        // Compile-time check: f64 messages (no Eq) are accepted.
        let mut q: EventQueue<f64> = EventQueue::new();
        q.schedule(
            SimTime::from_ticks(1),
            EventKind::Deliver(Envelope {
                from: AgentId(0),
                to: AgentId(1),
                msg: 24.8,
            }),
        );
        assert_eq!(q.len(), 1);
    }
}
