//! `massim` — a deterministic discrete-event message-passing runtime for
//! multi-agent systems.
//!
//! The paper's prototype ran inside the DESIRE environment on a single
//! machine; a modern reproduction needs a substrate on which one Utility
//! Agent negotiates with thousands of Customer Agents. The repro hint
//! suggests `tokio`, but an async runtime gives nondeterministic
//! interleavings; experiments must be replayable bit-for-bit. This crate
//! instead provides:
//!
//! * a **deterministic simulator** ([`runtime::Simulation`]): virtual
//!   time, a seeded RNG, and a total order on events — same seed, same
//!   trace, always;
//! * a **network model** ([`network`]) with latency and loss for fault
//!   injection (lost bids, late bids);
//! * **metrics** ([`metrics`]) and an **event log** ([`log`]) that the
//!   experiment harness reads;
//! * a **std-threaded batch executor** ([`threaded`]) to fan
//!   independent simulation runs (parameter sweeps) across cores.
//!
//! # Example
//!
//! ```
//! use massim::prelude::*;
//!
//! #[derive(Debug, Clone)]
//! enum Msg { Ping, Pong }
//!
//! struct Echo;
//! impl Agent<Msg> for Echo {
//!     fn on_message(&mut self, from: AgentId, msg: Msg, ctx: &mut Context<'_, Msg>) {
//!         if matches!(msg, Msg::Ping) {
//!             ctx.send(from, Msg::Pong);
//!         }
//!     }
//! }
//!
//! struct Caller { echo: AgentId, got_pong: bool }
//! impl Agent<Msg> for Caller {
//!     fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
//!         ctx.send(self.echo, Msg::Ping);
//!     }
//!     fn on_message(&mut self, _from: AgentId, msg: Msg, _ctx: &mut Context<'_, Msg>) {
//!         self.got_pong = matches!(msg, Msg::Pong);
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let echo = sim.add_agent(Echo);
//! let caller = sim.add_agent(Caller { echo, got_pong: false });
//! sim.run().unwrap();
//! assert!(sim.agent::<Caller>(caller).unwrap().got_pong);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod clock;
pub mod event;
pub mod log;
pub mod metrics;
pub mod network;
pub mod rng;
pub mod runtime;
pub mod threaded;

/// The most frequently used items.
pub mod prelude {
    pub use crate::agent::{Agent, AgentId, Context};
    pub use crate::clock::{SimDuration, SimTime};
    pub use crate::event::Envelope;
    pub use crate::log::EventLog;
    pub use crate::metrics::Metrics;
    pub use crate::network::NetworkModel;
    pub use crate::runtime::{RunOutcome, Simulation};
    pub use crate::threaded::run_batch;
}
