//! Event log: a replayable record of everything delivered.

use crate::agent::{AgentId, TimerToken};
use crate::clock::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One logged occurrence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogEntry<M> {
    /// A message was delivered.
    Delivered {
        /// Virtual delivery time.
        at: SimTime,
        /// Sender.
        from: AgentId,
        /// Recipient.
        to: AgentId,
        /// The payload.
        msg: M,
    },
    /// A message was dropped by the network.
    Dropped {
        /// Virtual send time.
        at: SimTime,
        /// Sender.
        from: AgentId,
        /// Intended recipient.
        to: AgentId,
    },
    /// A timer fired.
    TimerFired {
        /// Virtual time.
        at: SimTime,
        /// Owner of the timer.
        agent: AgentId,
        /// The token.
        token: TimerToken,
    },
}

impl<M> LogEntry<M> {
    /// Virtual time of the entry.
    pub fn time(&self) -> SimTime {
        match self {
            LogEntry::Delivered { at, .. }
            | LogEntry::Dropped { at, .. }
            | LogEntry::TimerFired { at, .. } => *at,
        }
    }
}

/// An append-only log of [`LogEntry`] values.
///
/// Logging message payloads requires `M: Clone`; simulations can disable
/// logging entirely for large runs (see
/// [`crate::runtime::Simulation::set_logging`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventLog<M> {
    entries: Vec<LogEntry<M>>,
}

impl<M> EventLog<M> {
    /// Creates an empty log.
    pub fn new() -> EventLog<M> {
        EventLog {
            entries: Vec::new(),
        }
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: LogEntry<M>) {
        self.entries.push(entry);
    }

    /// The entries in order.
    pub fn entries(&self) -> &[LogEntry<M>] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over delivered messages only.
    pub fn deliveries(&self) -> impl Iterator<Item = (&SimTime, &AgentId, &AgentId, &M)> {
        self.entries.iter().filter_map(|e| match e {
            LogEntry::Delivered { at, from, to, msg } => Some((at, from, to, msg)),
            _ => None,
        })
    }

    /// Messages delivered to `agent`.
    pub fn delivered_to<'a>(&'a self, agent: AgentId) -> impl Iterator<Item = &'a M> + 'a {
        self.deliveries()
            .filter(move |&(_, _, to, _)| *to == agent)
            .map(|(_, _, _, m)| m)
    }
}

impl<M> Default for EventLog<M> {
    fn default() -> Self {
        EventLog::new()
    }
}

impl<M: fmt::Debug> fmt::Display for EventLog<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            match e {
                LogEntry::Delivered { at, from, to, msg } => {
                    writeln!(f, "{at}  {from} → {to}: {msg:?}")?;
                }
                LogEntry::Dropped { at, from, to } => {
                    writeln!(f, "{at}  {from} → {to}: DROPPED")?;
                }
                LogEntry::TimerFired { at, agent, token } => {
                    writeln!(f, "{at}  {agent} timer {token:?}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_filter() {
        let mut log = EventLog::new();
        log.push(LogEntry::Delivered {
            at: SimTime::from_ticks(1),
            from: AgentId(0),
            to: AgentId(1),
            msg: "hello",
        });
        log.push(LogEntry::Dropped {
            at: SimTime::from_ticks(2),
            from: AgentId(0),
            to: AgentId(2),
        });
        log.push(LogEntry::Delivered {
            at: SimTime::from_ticks(3),
            from: AgentId(1),
            to: AgentId(0),
            msg: "reply",
        });
        assert_eq!(log.len(), 3);
        assert_eq!(log.deliveries().count(), 2);
        let to_zero: Vec<_> = log.delivered_to(AgentId(0)).collect();
        assert_eq!(to_zero, vec![&"reply"]);
    }

    #[test]
    fn entry_time() {
        let e: LogEntry<u8> = LogEntry::TimerFired {
            at: SimTime::from_ticks(9),
            agent: AgentId(1),
            token: TimerToken(0),
        };
        assert_eq!(e.time(), SimTime::from_ticks(9));
    }

    #[test]
    fn display_render() {
        let mut log = EventLog::new();
        log.push(LogEntry::Delivered {
            at: SimTime::from_ticks(1),
            from: AgentId(0),
            to: AgentId(1),
            msg: 7u8,
        });
        let text = log.to_string();
        assert!(text.contains("agent-0 → agent-1"));
    }
}
