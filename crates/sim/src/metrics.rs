//! Counters collected during a simulation run.

use crate::clock::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate metrics of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Messages handed to the network.
    pub messages_sent: u64,
    /// Messages delivered to recipients.
    pub messages_delivered: u64,
    /// Messages dropped by the network model.
    pub messages_dropped: u64,
    /// Messages the network model delivered twice.
    pub messages_duplicated: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Agent callbacks executed (start + message + timer).
    pub callbacks: u64,
    /// Virtual time at the end of the run.
    pub end_time: SimTime,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Fraction of sent messages that were dropped (0 when none sent).
    pub fn drop_rate(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.messages_dropped as f64 / self.messages_sent as f64
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent {} delivered {} dropped {} duplicated {} timers {} callbacks {} end {}",
            self.messages_sent,
            self.messages_delivered,
            self.messages_dropped,
            self.messages_duplicated,
            self.timers_fired,
            self.callbacks,
            self.end_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_rate_guards_division() {
        let m = Metrics::new();
        assert_eq!(m.drop_rate(), 0.0);
        let m2 = Metrics {
            messages_sent: 10,
            messages_dropped: 3,
            ..Metrics::new()
        };
        assert!((m2.drop_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_counts() {
        let m = Metrics {
            messages_sent: 5,
            ..Metrics::new()
        };
        assert!(m.to_string().contains("sent 5"));
    }
}
