//! Network models: latency, loss, duplication and reordering between
//! agents.
//!
//! The paper assumes "emerging technologies allowing two-way
//! communication between utility companies and their customers" — i.e. a
//! real WAN. Each fault class has a distinct, observable effect on a
//! negotiation run over this network:
//!
//! * **Latency** ([`NetworkModel::uniform`]) spreads bids over virtual
//!   time but changes no outcome: every response still arrives before
//!   the round deadline, so settlements are identical to the
//!   synchronous run.
//! * **Loss** ([`NetworkModel::with_drop_probability`]) makes customers
//!   fall silent for a round. The Utility Agent's deadline timer then
//!   concludes the round with each missing responder held at its last
//!   known bid (monotonic concession makes that safe), so negotiations
//!   take extra rounds, settlements drift toward earlier — more
//!   conservative — cut-downs, and some conclude deadline-forced.
//! * **Duplication** ([`NetworkModel::with_duplicate_probability`])
//!   delivers a message twice. The engines are idempotent per round
//!   (a repeated bid or announcement is ignored), so duplication alone
//!   never changes a settlement — only the wire counters.
//! * **Reordering** ([`NetworkModel::with_reordering`]) holds a message
//!   back so later traffic overtakes it. A bid that slips past its
//!   round's deadline is treated exactly like a lost one (the round
//!   concludes without it, stale arrivals are discarded), so heavy
//!   reordering shows up as deadline-forced rounds and drifted
//!   settlements, lighter than outright loss at the same probability.
//! * **Outages** ([`NetworkModel::with_outage`]) drop *everything* in a
//!   virtual-time window (backhaul outage, concentrator reboot). Rounds
//!   that straddle the window conclude empty on the deadline timer and
//!   the protocol re-converges afterwards from the held bid floor.

use crate::clock::SimDuration;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the network treats one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver after the given latency.
    After(SimDuration),
    /// Deliver *two* copies, after the two given latencies (an
    /// at-least-once transport retransmitting spuriously).
    Duplicate(SimDuration, SimDuration),
    /// Silently drop the message.
    Drop,
}

/// A stochastic network model, optionally with total-outage windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    min_latency: u64,
    max_latency: u64,
    drop_probability: f64,
    /// Probability a message is delivered twice.
    duplicate_probability: f64,
    /// Probability a message is held back by up to `reorder_extra` extra
    /// ticks, letting later messages overtake it.
    reorder_probability: f64,
    /// Maximum extra delay of a reordered message, in ticks.
    reorder_extra: u64,
    /// Half-open virtual-time windows `[from, to)` during which every
    /// message is lost (backhaul outage, concentrator reboot, ...).
    outages: Vec<(u64, u64)>,
}

impl NetworkModel {
    /// A perfect network: 1-tick latency, no loss.
    pub fn perfect() -> NetworkModel {
        NetworkModel::uniform(1, 1)
    }

    /// Uniform latency in `[min, max]` ticks, no loss.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or `min` is zero (zero-latency messages make
    /// same-instant feedback loops possible).
    pub fn uniform(min: u64, max: u64) -> NetworkModel {
        assert!(min > 0, "latency must be at least one tick");
        assert!(min <= max, "min latency {min} exceeds max {max}");
        NetworkModel {
            min_latency: min,
            max_latency: max,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            reorder_extra: 0,
            outages: Vec::new(),
        }
    }

    /// Adds a total-outage window: every message sent at a virtual time
    /// in `[from, to)` ticks is dropped.
    ///
    /// # Panics
    ///
    /// Panics unless `from < to`.
    pub fn with_outage(mut self, from: u64, to: u64) -> NetworkModel {
        assert!(from < to, "outage window [{from}, {to}) is empty");
        self.outages.push((from, to));
        self
    }

    /// Validates a fault probability: any value in the closed range
    /// `[0, 1]` is legal (`1.0` means "every message"); anything else —
    /// including NaN — is a configuration bug worth failing loudly on.
    fn checked_probability(p: f64, what: &str) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "{what} probability must be within [0, 1], got {p}"
        );
        p
    }

    /// Adds i.i.d. message loss with probability `p`. `p = 1.0` is a
    /// total blackout: every message is dropped.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1` (NaN rejected).
    pub fn with_drop_probability(mut self, p: f64) -> NetworkModel {
        self.drop_probability = NetworkModel::checked_probability(p, "drop");
        self
    }

    /// Adds i.i.d. message duplication with probability `p`: a duplicated
    /// message is delivered twice, each copy with its own latency.
    /// `p = 1.0` duplicates every message.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1` (NaN rejected).
    pub fn with_duplicate_probability(mut self, p: f64) -> NetworkModel {
        self.duplicate_probability = NetworkModel::checked_probability(p, "duplicate");
        self
    }

    /// Adds i.i.d. reordering: with probability `p` a message is held
    /// back by an extra `1..=extra` ticks on top of its drawn latency, so
    /// messages sent later can overtake it. `p = 1.0` holds back every
    /// message.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1` (NaN rejected) and `extra ≥ 1`.
    pub fn with_reordering(mut self, p: f64, extra: u64) -> NetworkModel {
        assert!(extra >= 1, "reordering needs at least one extra tick");
        self.reorder_probability = NetworkModel::checked_probability(p, "reorder");
        self.reorder_extra = extra;
        self
    }

    /// The configured loss probability.
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }

    /// The configured duplication probability.
    pub fn duplicate_probability(&self) -> f64 {
        self.duplicate_probability
    }

    /// The configured reordering `(probability, max extra ticks)`.
    pub fn reordering(&self) -> (f64, u64) {
        (self.reorder_probability, self.reorder_extra)
    }

    /// Latency bounds `(min, max)` in ticks.
    pub fn latency_bounds(&self) -> (u64, u64) {
        (self.min_latency, self.max_latency)
    }

    /// Decides the fate of one message sent at virtual time zero —
    /// shorthand for [`NetworkModel::route_at`] when no outages are
    /// configured.
    pub fn route(&self, rng: &mut StdRng) -> Delivery {
        self.route_at(rng, crate::clock::SimTime::ZERO)
    }

    /// Decides the fate of one message sent at `now`.
    pub fn route_at(&self, rng: &mut StdRng, now: crate::clock::SimTime) -> Delivery {
        let t = now.ticks();
        if self.outages.iter().any(|&(from, to)| t >= from && t < to) {
            return Delivery::Drop;
        }
        if self.drop_probability > 0.0 && rng.gen_range(0.0..1.0) < self.drop_probability {
            return Delivery::Drop;
        }
        let first = self.sample_latency(rng);
        if self.duplicate_probability > 0.0 && rng.gen_range(0.0..1.0) < self.duplicate_probability
        {
            let second = self.sample_latency(rng);
            return Delivery::Duplicate(first, second);
        }
        Delivery::After(first)
    }

    /// One latency draw, including the reordering hold-back.
    fn sample_latency(&self, rng: &mut StdRng) -> SimDuration {
        let mut latency = if self.min_latency == self.max_latency {
            self.min_latency
        } else {
            rng.gen_range(self.min_latency..=self.max_latency)
        };
        if self.reorder_probability > 0.0 && rng.gen_range(0.0..1.0) < self.reorder_probability {
            latency += rng.gen_range(1..=self.reorder_extra);
        }
        SimDuration::from_ticks(latency)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::perfect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn perfect_network_always_one_tick() {
        let net = NetworkModel::perfect();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(
                net.route(&mut rng),
                Delivery::After(SimDuration::from_ticks(1))
            );
        }
    }

    #[test]
    fn uniform_latency_in_bounds() {
        let net = NetworkModel::uniform(3, 9);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            match net.route(&mut rng) {
                Delivery::After(d) => assert!((3..=9).contains(&d.ticks())),
                other => panic!("fault-free network produced {other:?}"),
            }
        }
    }

    #[test]
    fn drop_rate_roughly_matches() {
        let net = NetworkModel::uniform(1, 1).with_drop_probability(0.3);
        let mut rng = StdRng::seed_from_u64(3);
        let drops = (0..10_000)
            .filter(|_| matches!(net.route(&mut rng), Delivery::Drop))
            .count();
        let rate = drops as f64 / 10_000.0;
        assert!((0.25..0.35).contains(&rate), "observed drop rate {rate}");
    }

    #[test]
    fn deterministic_given_seed() {
        let net = NetworkModel::uniform(1, 10).with_drop_probability(0.1);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| net.route(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "at least one tick")]
    fn zero_latency_panics() {
        let _ = NetworkModel::uniform(0, 5);
    }

    #[test]
    #[should_panic(expected = "drop probability must be within [0, 1]")]
    fn negative_drop_probability_panics() {
        let _ = NetworkModel::perfect().with_drop_probability(-0.1);
    }

    #[test]
    #[should_panic(expected = "drop probability must be within [0, 1]")]
    fn nan_drop_probability_panics() {
        let _ = NetworkModel::perfect().with_drop_probability(f64::NAN);
    }

    #[test]
    fn total_drop_probability_drops_everything() {
        let net = NetworkModel::perfect().with_drop_probability(1.0);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            assert_eq!(net.route(&mut rng), Delivery::Drop);
        }
    }

    #[test]
    fn total_duplicate_probability_duplicates_everything() {
        let net = NetworkModel::perfect().with_duplicate_probability(1.0);
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..100 {
            assert!(matches!(net.route(&mut rng), Delivery::Duplicate(_, _)));
        }
    }

    #[test]
    fn accessors() {
        let net = NetworkModel::uniform(2, 4)
            .with_drop_probability(0.05)
            .with_duplicate_probability(0.1)
            .with_reordering(0.2, 7);
        assert_eq!(net.latency_bounds(), (2, 4));
        assert!((net.drop_probability() - 0.05).abs() < 1e-12);
        assert!((net.duplicate_probability() - 0.1).abs() < 1e-12);
        assert_eq!(net.reordering(), (0.2, 7));
    }

    #[test]
    fn duplicate_rate_roughly_matches() {
        let net = NetworkModel::perfect().with_duplicate_probability(0.25);
        let mut rng = StdRng::seed_from_u64(4);
        let dups = (0..10_000)
            .filter(|_| matches!(net.route(&mut rng), Delivery::Duplicate(_, _)))
            .count();
        let rate = dups as f64 / 10_000.0;
        assert!((0.2..0.3).contains(&rate), "observed duplicate rate {rate}");
    }

    #[test]
    fn duplicate_copies_have_independent_latencies() {
        let net = NetworkModel::uniform(1, 20).with_duplicate_probability(0.9);
        let mut rng = StdRng::seed_from_u64(5);
        let mut differing = 0;
        for _ in 0..200 {
            if let Delivery::Duplicate(a, b) = net.route(&mut rng) {
                assert!((1..=20).contains(&a.ticks()));
                assert!((1..=20).contains(&b.ticks()));
                if a != b {
                    differing += 1;
                }
            }
        }
        assert!(differing > 0, "copies should not be latency-locked");
    }

    #[test]
    fn reordering_extends_latency_within_bounds() {
        let net = NetworkModel::uniform(3, 3).with_reordering(0.5, 10);
        let mut rng = StdRng::seed_from_u64(6);
        let mut held_back = 0;
        for _ in 0..1000 {
            match net.route(&mut rng) {
                Delivery::After(d) => {
                    assert!((3..=13).contains(&d.ticks()), "latency {d:?}");
                    if d.ticks() > 3 {
                        held_back += 1;
                    }
                }
                other => panic!("lossless network produced {other:?}"),
            }
        }
        assert!(
            (300..700).contains(&held_back),
            "≈half the messages held back, got {held_back}"
        );
    }

    #[test]
    fn faulty_network_is_deterministic_per_seed() {
        let net = NetworkModel::uniform(1, 10)
            .with_drop_probability(0.1)
            .with_duplicate_probability(0.2)
            .with_reordering(0.3, 15);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| net.route(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    #[should_panic(expected = "duplicate probability must be within [0, 1]")]
    fn bad_duplicate_probability_panics() {
        let _ = NetworkModel::perfect().with_duplicate_probability(1.5);
    }

    #[test]
    #[should_panic(expected = "reorder probability must be within [0, 1]")]
    fn bad_reorder_probability_panics() {
        let _ = NetworkModel::perfect().with_reordering(2.0, 5);
    }

    #[test]
    #[should_panic(expected = "extra tick")]
    fn zero_reorder_extra_panics() {
        let _ = NetworkModel::perfect().with_reordering(0.5, 0);
    }

    #[test]
    fn outage_window_drops_everything_inside() {
        use crate::clock::SimTime;
        let net = NetworkModel::perfect().with_outage(10, 20);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            net.route_at(&mut rng, SimTime::from_ticks(9)),
            Delivery::After(_)
        ));
        assert_eq!(
            net.route_at(&mut rng, SimTime::from_ticks(10)),
            Delivery::Drop
        );
        assert_eq!(
            net.route_at(&mut rng, SimTime::from_ticks(19)),
            Delivery::Drop
        );
        assert!(matches!(
            net.route_at(&mut rng, SimTime::from_ticks(20)),
            Delivery::After(_)
        ));
    }

    #[test]
    fn multiple_outages() {
        use crate::clock::SimTime;
        let net = NetworkModel::perfect()
            .with_outage(0, 5)
            .with_outage(50, 60);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(
            net.route_at(&mut rng, SimTime::from_ticks(2)),
            Delivery::Drop
        );
        assert!(matches!(
            net.route_at(&mut rng, SimTime::from_ticks(30)),
            Delivery::After(_)
        ));
        assert_eq!(
            net.route_at(&mut rng, SimTime::from_ticks(55)),
            Delivery::Drop
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_outage_panics() {
        let _ = NetworkModel::perfect().with_outage(7, 7);
    }
}
