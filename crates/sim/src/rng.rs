//! Deterministic seed derivation.
//!
//! Every stochastic decision in a simulation flows from one master seed;
//! sub-streams (network, per-agent, per-experiment-repetition) are derived
//! with a SplitMix64-style mix so that changing one consumer's draw count
//! does not perturb the others.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent seeds from a master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Creates a sequence from a master seed.
    pub fn new(master: u64) -> SeedSequence {
        SeedSequence { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the seed for a named stream index (SplitMix64 finalizer).
    pub fn derive(&self, stream: u64) -> u64 {
        let mut z = self
            .master
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(stream.wrapping_mul(0xd1b5_4a32_d192_ed03));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A ready-made RNG for a stream.
    pub fn rng(&self, stream: u64) -> StdRng {
        StdRng::seed_from_u64(self.derive(stream))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic() {
        let a = SeedSequence::new(42);
        assert_eq!(a.derive(1), SeedSequence::new(42).derive(1));
    }

    #[test]
    fn streams_differ() {
        let s = SeedSequence::new(42);
        assert_ne!(s.derive(1), s.derive(2));
        assert_ne!(s.derive(1), SeedSequence::new(43).derive(1));
    }

    #[test]
    fn derived_rngs_are_independent_streams() {
        let s = SeedSequence::new(7);
        let mut r1 = s.rng(1);
        let mut r2 = s.rng(2);
        let a: Vec<u32> = (0..10).map(|_| r1.gen()).collect();
        let b: Vec<u32> = (0..10).map(|_| r2.gen()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_stream_is_fine() {
        let s = SeedSequence::new(0);
        // SplitMix64 of 0 is not 0.
        assert_ne!(s.derive(0), 0);
        assert_eq!(s.master(), 0);
    }
}
