//! The deterministic simulation loop.

use crate::agent::{Agent, AgentId, Context, Effect, TimerToken};
use crate::clock::SimTime;
use crate::event::{Envelope, EventKind, EventQueue};
use crate::log::{EventLog, LogEntry};
use crate::metrics::Metrics;
use crate::network::{Delivery, NetworkModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;
use std::fmt;

/// Sender id used for messages injected from outside the simulation
/// (the "External World" of the paper's agent model).
pub const EXTERNAL: AgentId = AgentId(u64::MAX);

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained: no agent has anything left to do.
    Quiescent,
    /// An agent called [`Context::halt`].
    Halted,
    /// The time horizon passed (`run_until`).
    Horizon,
}

/// Error from a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The event budget was exhausted — almost certainly a message loop.
    EventLimit {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// A message addressed a non-existent agent.
    UnknownRecipient {
        /// The bad address.
        to: AgentId,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::EventLimit { limit } => {
                write!(f, "event budget of {limit} exhausted (message loop?)")
            }
            RunError::UnknownRecipient { to } => write!(f, "message to unknown agent {to}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Object-safe wrapper adding downcasting to [`Agent`].
trait AnyAgent<M>: Agent<M> {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

impl<M, T: Agent<M> + 'static> AnyAgent<M> for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Placeholder left behind by [`Simulation::take_agent`]: absorbs any
/// message or timer addressed to the vacated id.
struct TakenAgent;

impl<M> Agent<M> for TakenAgent {
    fn on_message(&mut self, _from: AgentId, _msg: M, _ctx: &mut Context<'_, M>) {}
}

/// A deterministic discrete-event simulation over messages of type `M`.
///
/// Same seed + same agent set ⇒ identical execution, event for event.
/// See the crate docs for a complete example.
pub struct Simulation<M: 'static> {
    agents: Vec<Box<dyn AnyAgent<M>>>,
    queue: EventQueue<M>,
    now: SimTime,
    rng: StdRng,
    network: NetworkModel,
    metrics: Metrics,
    log: Option<EventLog<M>>,
    started: bool,
    halted: bool,
    max_events: u64,
}

impl<M: Clone + 'static> Simulation<M> {
    /// Creates a simulation with a perfect network and logging enabled.
    pub fn new(seed: u64) -> Simulation<M> {
        Simulation::with_network(seed, NetworkModel::perfect())
    }

    /// Creates a simulation with an explicit network model.
    pub fn with_network(seed: u64, network: NetworkModel) -> Simulation<M> {
        Simulation {
            agents: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            network,
            metrics: Metrics::new(),
            log: Some(EventLog::new()),
            started: false,
            halted: false,
            max_events: 10_000_000,
        }
    }

    /// Enables or disables payload logging (disable for large sweeps).
    pub fn set_logging(&mut self, enabled: bool) {
        if enabled {
            if self.log.is_none() {
                self.log = Some(EventLog::new());
            }
        } else {
            self.log = None;
        }
    }

    /// Sets the event budget (default ten million).
    ///
    /// # Panics
    ///
    /// Panics if `max_events` is zero.
    pub fn set_max_events(&mut self, max_events: u64) {
        assert!(max_events > 0, "event budget must be positive");
        self.max_events = max_events;
    }

    /// Registers an agent, returning its id. Ids are assigned densely in
    /// registration order.
    pub fn add_agent(&mut self, agent: impl Agent<M> + 'static) -> AgentId {
        let id = AgentId(self.agents.len() as u64);
        self.agents.push(Box::new(agent));
        id
    }

    /// Number of registered agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Downcasts an agent to its concrete type.
    pub fn agent<T: 'static>(&self, id: AgentId) -> Option<&T> {
        self.agents
            .get(id.0 as usize)
            .and_then(|a| a.as_any().downcast_ref::<T>())
    }

    /// Mutable downcast of an agent.
    pub fn agent_mut<T: 'static>(&mut self, id: AgentId) -> Option<&mut T> {
        self.agents
            .get_mut(id.0 as usize)
            .and_then(|a| a.as_any_mut().downcast_mut::<T>())
    }

    /// Moves an agent out of the simulation, leaving an inert
    /// placeholder at its id (ids stay dense; later traffic to the slot
    /// is absorbed). `None` if the id is unknown or the concrete type
    /// does not match — the original agent stays in place in that case.
    ///
    /// The intended use is recovering agent state after a run — e.g. the
    /// negotiation engines a hot loop wants to reuse for the next
    /// simulation instead of rebuilding.
    pub fn take_agent<T: 'static>(&mut self, id: AgentId) -> Option<T> {
        let slot = self.agents.get_mut(id.0 as usize)?;
        if !slot.as_any().is::<T>() {
            return None;
        }
        let taken = std::mem::replace(slot, Box::new(TakenAgent));
        taken.into_any().downcast::<T>().ok().map(|boxed| *boxed)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The event log, if logging is enabled.
    pub fn log(&self) -> Option<&EventLog<M>> {
        self.log.as_ref()
    }

    /// Injects a message from the external world, delivered through the
    /// network model like any other message.
    ///
    /// # Panics
    ///
    /// Panics if `to` does not name a registered agent.
    pub fn send_external(&mut self, to: AgentId, msg: M) {
        assert!(
            (to.0 as usize) < self.agents.len(),
            "external message to unknown agent {to}"
        );
        self.route(Envelope {
            from: EXTERNAL,
            to,
            msg,
        });
    }

    /// Runs until quiescence or halt.
    ///
    /// # Errors
    ///
    /// See [`RunError`].
    pub fn run(&mut self) -> Result<RunOutcome, RunError> {
        self.run_until(SimTime::from_ticks(u64::MAX))
    }

    /// Runs until quiescence, halt, or the first event past `horizon`.
    ///
    /// # Errors
    ///
    /// See [`RunError`].
    pub fn run_until(&mut self, horizon: SimTime) -> Result<RunOutcome, RunError> {
        if !self.started {
            self.started = true;
            for i in 0..self.agents.len() {
                self.run_callback(AgentId(i as u64), CallbackKind::Start)?;
                if self.halted {
                    return Ok(RunOutcome::Halted);
                }
            }
        }
        let mut budget = self.max_events;
        while let Some(at) = self.queue.peek_time() {
            if at > horizon {
                self.now = horizon;
                self.metrics.end_time = self.now;
                return Ok(RunOutcome::Horizon);
            }
            if budget == 0 {
                return Err(RunError::EventLimit {
                    limit: self.max_events,
                });
            }
            budget -= 1;
            let event = self.queue.pop().expect("peeked event exists");
            self.now = event.at;
            match event.kind {
                EventKind::Deliver(env) => {
                    if env.to == EXTERNAL {
                        // Replies to the external world are absorbed by
                        // the environment.
                        self.metrics.messages_delivered += 1;
                        if let Some(log) = &mut self.log {
                            log.push(LogEntry::Delivered {
                                at: self.now,
                                from: env.from,
                                to: env.to,
                                msg: env.msg.clone(),
                            });
                        }
                        continue;
                    }
                    if (env.to.0 as usize) >= self.agents.len() {
                        return Err(RunError::UnknownRecipient { to: env.to });
                    }
                    self.metrics.messages_delivered += 1;
                    if let Some(log) = &mut self.log {
                        log.push(LogEntry::Delivered {
                            at: self.now,
                            from: env.from,
                            to: env.to,
                            msg: env.msg.clone(),
                        });
                    }
                    self.run_callback(env.to, CallbackKind::Message(env.from, env.msg))?;
                }
                EventKind::Timer { agent, token } => {
                    if (agent.0 as usize) >= self.agents.len() {
                        return Err(RunError::UnknownRecipient { to: agent });
                    }
                    self.metrics.timers_fired += 1;
                    if let Some(log) = &mut self.log {
                        log.push(LogEntry::TimerFired {
                            at: self.now,
                            agent,
                            token,
                        });
                    }
                    self.run_callback(agent, CallbackKind::Timer(token))?;
                }
            }
            if self.halted {
                self.metrics.end_time = self.now;
                return Ok(RunOutcome::Halted);
            }
        }
        self.metrics.end_time = self.now;
        Ok(RunOutcome::Quiescent)
    }

    fn run_callback(&mut self, id: AgentId, kind: CallbackKind<M>) -> Result<(), RunError> {
        self.metrics.callbacks += 1;
        let mut ctx = Context {
            self_id: id,
            now: self.now,
            rng: &mut self.rng,
            effects: Vec::new(),
        };
        {
            let agent = self
                .agents
                .get_mut(id.0 as usize)
                .ok_or(RunError::UnknownRecipient { to: id })?;
            match kind {
                CallbackKind::Start => agent.on_start(&mut ctx),
                CallbackKind::Message(from, msg) => agent.on_message(from, msg, &mut ctx),
                CallbackKind::Timer(token) => agent.on_timer(token, &mut ctx),
            }
        }
        let effects = ctx.effects;
        for effect in effects {
            match effect {
                Effect::Send(env) => self.route(env),
                Effect::Timer { token, after } => {
                    self.queue
                        .schedule(self.now + after, EventKind::Timer { agent: id, token });
                }
                Effect::Halt => self.halted = true,
            }
        }
        Ok(())
    }

    fn route(&mut self, env: Envelope<M>) {
        self.metrics.messages_sent += 1;
        match self.network.route_at(&mut self.rng, self.now) {
            Delivery::Drop => {
                self.metrics.messages_dropped += 1;
                if let Some(log) = &mut self.log {
                    log.push(LogEntry::Dropped {
                        at: self.now,
                        from: env.from,
                        to: env.to,
                    });
                }
            }
            Delivery::After(latency) => {
                self.queue
                    .schedule(self.now + latency, EventKind::Deliver(env));
            }
            Delivery::Duplicate(first, second) => {
                self.metrics.messages_duplicated += 1;
                self.queue
                    .schedule(self.now + first, EventKind::Deliver(env.clone()));
                self.queue
                    .schedule(self.now + second, EventKind::Deliver(env));
            }
        }
    }
}

enum CallbackKind<M> {
    Start,
    Message(AgentId, M),
    Timer(TimerToken),
}

impl<M: 'static> fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("agents", &self.agents.len())
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .field("halted", &self.halted)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimDuration;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Echo {
        seen: Vec<u32>,
    }

    impl Agent<Msg> for Echo {
        fn on_message(&mut self, from: AgentId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if let Msg::Ping(n) = msg {
                self.seen.push(n);
                ctx.send(from, Msg::Pong(n));
            }
        }
    }

    struct Pinger {
        target: AgentId,
        rounds: u32,
        pongs: Vec<u32>,
    }

    impl Agent<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.send(self.target, Msg::Ping(0));
        }
        fn on_message(&mut self, from: AgentId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if let Msg::Pong(n) = msg {
                self.pongs.push(n);
                if n + 1 < self.rounds {
                    ctx.send(from, Msg::Ping(n + 1));
                } else {
                    ctx.halt();
                }
            }
        }
    }

    #[test]
    fn ping_pong_runs_to_halt() {
        let mut sim = Simulation::new(1);
        let echo = sim.add_agent(Echo { seen: Vec::new() });
        let pinger = sim.add_agent(Pinger {
            target: echo,
            rounds: 5,
            pongs: Vec::new(),
        });
        let outcome = sim.run().unwrap();
        assert_eq!(outcome, RunOutcome::Halted);
        assert_eq!(sim.agent::<Echo>(echo).unwrap().seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(
            sim.agent::<Pinger>(pinger).unwrap().pongs,
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(sim.metrics().messages_delivered, 10);
    }

    #[test]
    fn quiescence_when_no_replies() {
        struct Silent;
        impl Agent<Msg> for Silent {
            fn on_message(&mut self, _: AgentId, _: Msg, _: &mut Context<'_, Msg>) {}
        }
        let mut sim = Simulation::new(1);
        let silent = sim.add_agent(Silent);
        sim.send_external(silent, Msg::Ping(9));
        let outcome = sim.run().unwrap();
        assert_eq!(outcome, RunOutcome::Quiescent);
        assert_eq!(sim.metrics().messages_delivered, 1);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        fn run(seed: u64) -> (u64, u64) {
            let mut sim: Simulation<Msg> =
                Simulation::with_network(seed, NetworkModel::uniform(1, 20));
            let echo = sim.add_agent(Echo { seen: Vec::new() });
            let _ = sim.add_agent(Pinger {
                target: echo,
                rounds: 10,
                pongs: Vec::new(),
            });
            sim.run().unwrap();
            (sim.now().ticks(), sim.metrics().messages_delivered)
        }
        assert_eq!(run(99), run(99));
        assert_ne!(
            run(99).0,
            run(100).0,
            "different seeds give different timings"
        );
    }

    #[test]
    fn lossy_network_drops_messages() {
        let mut sim: Simulation<Msg> =
            Simulation::with_network(5, NetworkModel::uniform(1, 1).with_drop_probability(0.5));
        let echo = sim.add_agent(Echo { seen: Vec::new() });
        for n in 0..100 {
            sim.send_external(echo, Msg::Ping(n));
        }
        sim.run().unwrap();
        let m = sim.metrics();
        assert!(m.messages_dropped > 10, "dropped {}", m.messages_dropped);
        // Echo replies to delivered pings; those replies can drop too.
        assert!(m.messages_delivered < 200);
    }

    #[test]
    fn duplicating_network_delivers_twice() {
        let mut sim: Simulation<Msg> = Simulation::with_network(
            9,
            NetworkModel::uniform(1, 1).with_duplicate_probability(0.5),
        );
        let echo = sim.add_agent(Echo { seen: Vec::new() });
        for n in 0..100 {
            sim.send_external(echo, Msg::Ping(n));
        }
        sim.run().unwrap();
        let m = sim.metrics();
        assert!(
            m.messages_duplicated > 10,
            "duplicated {}",
            m.messages_duplicated
        );
        // Every duplicated ping is seen twice (and its pong can be
        // duplicated too), so deliveries exceed the send count.
        let seen = &sim.agent::<Echo>(echo).unwrap().seen;
        assert!(seen.len() > 100, "echo saw {} pings", seen.len());
    }

    #[test]
    fn reordering_network_inverts_delivery_order() {
        // Two pings injected back to back on a constant-latency network:
        // without reordering the first always arrives first; with heavy
        // reordering some seeds invert them.
        fn order(with_reorder: bool, seed: u64) -> Vec<u32> {
            let net = if with_reorder {
                NetworkModel::uniform(1, 1).with_reordering(0.9, 50)
            } else {
                NetworkModel::uniform(1, 1)
            };
            let mut sim: Simulation<Msg> = Simulation::with_network(seed, net);
            let echo = sim.add_agent(Echo { seen: Vec::new() });
            sim.send_external(echo, Msg::Ping(1));
            sim.send_external(echo, Msg::Ping(2));
            sim.run().unwrap();
            sim.agent::<Echo>(echo).unwrap().seen.clone()
        }
        assert_eq!(order(false, 3), vec![1, 2]);
        let inverted = (0..20).any(|seed| order(true, seed) == vec![2, 1]);
        assert!(inverted, "heavy reordering must invert some pair");
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timed {
            fired: Vec<u64>,
        }
        impl Agent<Msg> for Timed {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(TimerToken(2), SimDuration::from_ticks(20));
                ctx.set_timer(TimerToken(1), SimDuration::from_ticks(10));
            }
            fn on_message(&mut self, _: AgentId, _: Msg, _: &mut Context<'_, Msg>) {}
            fn on_timer(&mut self, token: TimerToken, _: &mut Context<'_, Msg>) {
                self.fired.push(token.0);
            }
        }
        let mut sim: Simulation<Msg> = Simulation::new(0);
        let id = sim.add_agent(Timed { fired: Vec::new() });
        sim.run().unwrap();
        assert_eq!(sim.agent::<Timed>(id).unwrap().fired, vec![1, 2]);
        assert_eq!(sim.metrics().timers_fired, 2);
    }

    #[test]
    fn event_limit_detects_loops() {
        struct Looper {
            peer: Option<AgentId>,
        }
        impl Agent<Msg> for Looper {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                if let Some(p) = self.peer {
                    ctx.send(p, Msg::Ping(0));
                }
            }
            fn on_message(&mut self, from: AgentId, _: Msg, ctx: &mut Context<'_, Msg>) {
                ctx.send(from, Msg::Ping(0));
            }
        }
        let mut sim = Simulation::new(0);
        let a = sim.add_agent(Looper { peer: None });
        sim.agent_mut::<Looper>(a).unwrap();
        let b = sim.add_agent(Looper { peer: Some(a) });
        let _ = b;
        sim.set_max_events(1000);
        let err = sim.run().unwrap_err();
        assert_eq!(err, RunError::EventLimit { limit: 1000 });
    }

    #[test]
    fn horizon_stops_early() {
        let mut sim = Simulation::with_network(3, NetworkModel::uniform(50, 50));
        let echo = sim.add_agent(Echo { seen: Vec::new() });
        sim.send_external(echo, Msg::Ping(1));
        let outcome = sim.run_until(SimTime::from_ticks(10)).unwrap();
        assert_eq!(outcome, RunOutcome::Horizon);
        assert_eq!(sim.metrics().messages_delivered, 0);
        // Continue past the horizon.
        let outcome = sim.run().unwrap();
        assert_eq!(outcome, RunOutcome::Quiescent);
        assert_eq!(sim.agent::<Echo>(echo).unwrap().seen, vec![1]);
    }

    #[test]
    fn log_records_deliveries() {
        let mut sim = Simulation::new(1);
        let echo = sim.add_agent(Echo { seen: Vec::new() });
        sim.send_external(echo, Msg::Ping(7));
        sim.run().unwrap();
        let log = sim.log().unwrap();
        assert!(log
            .deliveries()
            .any(|(_, from, to, msg)| *from == EXTERNAL && *to == echo && *msg == Msg::Ping(7)));
    }

    #[test]
    fn logging_can_be_disabled() {
        let mut sim = Simulation::new(1);
        let echo = sim.add_agent(Echo { seen: Vec::new() });
        sim.set_logging(false);
        sim.send_external(echo, Msg::Ping(7));
        sim.run().unwrap();
        assert!(sim.log().is_none());
    }

    #[test]
    fn downcast_to_wrong_type_is_none() {
        let mut sim: Simulation<Msg> = Simulation::new(1);
        let echo = sim.add_agent(Echo { seen: Vec::new() });
        assert!(sim.agent::<Pinger>(echo).is_none());
        assert!(sim.agent::<Echo>(AgentId(99)).is_none());
    }

    #[test]
    #[should_panic(expected = "unknown agent")]
    fn external_to_unknown_agent_panics() {
        let mut sim: Simulation<Msg> = Simulation::new(1);
        sim.send_external(AgentId(0), Msg::Ping(0));
    }

    #[test]
    fn take_agent_moves_state_out() {
        let mut sim = Simulation::new(1);
        let echo = sim.add_agent(Echo { seen: Vec::new() });
        sim.send_external(echo, Msg::Ping(3));
        sim.run().unwrap();
        assert!(
            sim.take_agent::<Pinger>(echo).is_none(),
            "wrong type must leave the agent in place"
        );
        let taken = sim.take_agent::<Echo>(echo).unwrap();
        assert_eq!(taken.seen, vec![3]);
        // The slot is now inert: a second take finds nothing and later
        // traffic to the id is absorbed rather than erroring.
        assert!(sim.take_agent::<Echo>(echo).is_none());
        assert!(sim.take_agent::<Echo>(AgentId(99)).is_none());
        sim.send_external(echo, Msg::Ping(4));
        assert!(sim.run().is_ok());
    }
}
