//! Threaded batch execution of independent simulations.
//!
//! Parameter sweeps (the β-sensitivity and scaling experiments) run many
//! *independent* simulations; each one stays deterministic, and the batch
//! executor fans them across OS threads with `std::thread::scope`.
//! Results come back in input order regardless of completion order.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;

/// A boxed unit of batch work.
pub type Job<R> = Box<dyn FnOnce() -> R + Send>;

/// Runs `jobs.len()` independent tasks across up to `threads` worker
/// threads, returning results in input order.
///
/// Each job is a closure producing a result; jobs must be `Send` and are
/// executed exactly once. With `threads == 1` this degenerates to a
/// sequential loop (useful for debugging).
///
/// # Example
///
/// ```
/// use massim::threaded::run_batch;
/// use std::num::NonZeroUsize;
///
/// let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..8u64)
///     .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> u64 + Send>)
///     .collect();
/// let results = run_batch(jobs, NonZeroUsize::new(4).unwrap());
/// assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_batch<R: Send>(jobs: Vec<Job<R>>, threads: NonZeroUsize) -> Vec<R> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.get().min(n);
    if workers == 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }

    let queue: Mutex<VecDeque<(usize, Job<R>)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let (result_tx, result_rx) = mpsc::channel::<(usize, R)>();

    thread::scope(|scope| {
        for _ in 0..workers {
            let queue = &queue;
            let result_tx = result_tx.clone();
            scope.spawn(move || loop {
                let Some((index, job)) = queue.lock().expect("queue lock").pop_front() else {
                    break;
                };
                let result = job();
                if result_tx.send((index, result)).is_err() {
                    break;
                }
            });
        }
        drop(result_tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        while let Ok((index, result)) = result_rx.recv() {
            slots[index] = Some(result);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job completed"))
            .collect()
    })
}

/// A convenience wrapper: runs the same seeded experiment for each seed,
/// using all available parallelism.
pub fn run_seeds<R, F>(seeds: &[u64], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Send + Sync,
{
    let threads = thread::available_parallelism().unwrap_or(NonZeroUsize::new(1).expect("1 > 0"));
    let f = &f;
    thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .chunks(seeds.len().div_ceil(threads.get()).max(1))
            .map(|chunk| scope.spawn(move || chunk.iter().map(|&s| f(s)).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Agent, AgentId, Context};
    use crate::runtime::Simulation;

    #[test]
    fn empty_batch() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        assert!(run_batch(jobs, NonZeroUsize::new(4).unwrap()).is_empty());
    }

    #[test]
    fn single_thread_sequential() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..5u32)
            .map(|i| Box::new(move || i + 1) as Box<dyn FnOnce() -> u32 + Send>)
            .collect();
        assert_eq!(
            run_batch(jobs, NonZeroUsize::new(1).unwrap()),
            vec![1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn results_in_input_order_despite_parallelism() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64usize)
            .map(|i| {
                Box::new(move || {
                    // Vary work so completion order differs from input order.
                    let spins = (64 - i) * 1000;
                    let mut acc = 0usize;
                    for k in 0..spins {
                        acc = acc.wrapping_add(k);
                    }
                    std::hint::black_box(acc);
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let results = run_batch(jobs, NonZeroUsize::new(8).unwrap());
        assert_eq!(results, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn simulations_in_parallel_stay_deterministic() {
        #[derive(Debug, Clone)]
        struct Tick;
        struct Counter {
            n: u64,
        }
        impl Agent<Tick> for Counter {
            fn on_start(&mut self, ctx: &mut Context<'_, Tick>) {
                ctx.send(ctx.self_id(), Tick);
            }
            fn on_message(&mut self, _: AgentId, _: Tick, ctx: &mut Context<'_, Tick>) {
                self.n += 1;
                if self.n < 50 {
                    ctx.send(ctx.self_id(), Tick);
                }
            }
        }
        fn run_one(seed: u64) -> u64 {
            let mut sim = Simulation::new(seed);
            let id = sim.add_agent(Counter { n: 0 });
            sim.run().unwrap();
            sim.agent::<Counter>(id).unwrap().n
        }
        let seeds: Vec<u64> = (0..16).collect();
        let parallel = run_seeds(&seeds, run_one);
        let sequential: Vec<u64> = seeds.iter().map(|&s| run_one(s)).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn run_seeds_preserves_order() {
        let seeds: Vec<u64> = (0..23).collect();
        let out = run_seeds(&seeds, |s| s * 2);
        assert_eq!(out, seeds.iter().map(|s| s * 2).collect::<Vec<_>>());
    }
}
