//! Property-based tests of the deterministic runtime: total event order,
//! replay equality, and conservation of message counts.

use massim::agent::{Agent, AgentId, Context};
use massim::clock::SimTime;
use massim::event::{Envelope, EventKind, EventQueue};
use massim::network::NetworkModel;
use massim::runtime::Simulation;
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
struct Token(u32);

/// A gossiping agent: forwards each received token to a fixed next hop
/// until the hop budget runs out.
struct Gossip {
    next: AgentId,
    budget: u32,
    received: u32,
}

impl Agent<Token> for Gossip {
    fn on_message(&mut self, _from: AgentId, msg: Token, ctx: &mut Context<'_, Token>) {
        self.received += 1;
        if msg.0 < self.budget {
            ctx.send(self.next, Token(msg.0 + 1));
        }
    }
}

fn run_ring(agents: usize, budget: u32, seed: u64, net: NetworkModel) -> (u64, u64, u64) {
    let mut sim: Simulation<Token> = Simulation::with_network(seed, net);
    sim.set_logging(false);
    let ids: Vec<AgentId> = (0..agents)
        .map(|i| {
            // Temporarily wire to self; fix below once all ids exist.
            let _ = i;
            sim.add_agent(Gossip {
                next: AgentId(0),
                budget,
                received: 0,
            })
        })
        .collect();
    for (i, &id) in ids.iter().enumerate() {
        let next = ids[(i + 1) % ids.len()];
        sim.agent_mut::<Gossip>(id).expect("exists").next = next;
    }
    sim.send_external(ids[0], Token(0));
    sim.run().expect("ring gossip terminates");
    let m = sim.metrics();
    (m.messages_sent, m.messages_delivered, m.messages_dropped)
}

proptest! {
    /// The event queue pops in non-decreasing time order with FIFO ties.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..100, 1..50)) {
        let mut q: EventQueue<u32> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(
                SimTime::from_ticks(t),
                EventKind::Deliver(Envelope { from: AgentId(0), to: AgentId(0), msg: i as u32 }),
            );
        }
        let mut last_time = SimTime::ZERO;
        let mut last_seq_at_time: Option<u32> = None;
        while let Some(e) = q.pop() {
            prop_assert!(e.at >= last_time);
            if e.at > last_time {
                last_seq_at_time = None;
            }
            if let EventKind::Deliver(env) = &e.kind {
                if let Some(prev) = last_seq_at_time {
                    // Same timestamp: insertion order (msg index) rises.
                    prop_assert!(env.msg > prev);
                }
                last_seq_at_time = Some(env.msg);
            }
            last_time = e.at;
        }
    }

    /// Same seed, same outcome — any topology, any lossy network.
    #[test]
    fn replay_equality(
        agents in 2usize..8,
        budget in 1u32..40,
        seed in 0u64..200,
        drop in 0.0f64..0.5,
    ) {
        let net = NetworkModel::uniform(1, 10).with_drop_probability(drop);
        let a = run_ring(agents, budget, seed, net.clone());
        let b = run_ring(agents, budget, seed, net);
        prop_assert_eq!(a, b);
    }

    /// Conservation: sent = delivered + dropped on a quiescent run.
    #[test]
    fn message_conservation(
        agents in 2usize..8,
        budget in 1u32..40,
        seed in 0u64..100,
        drop in 0.0f64..0.5,
    ) {
        let net = NetworkModel::uniform(1, 5).with_drop_probability(drop);
        let (sent, delivered, dropped) = run_ring(agents, budget, seed, net);
        prop_assert_eq!(sent, delivered + dropped);
    }

    /// On a lossless network the whole token chain is delivered.
    #[test]
    fn lossless_chain_completes(agents in 2usize..8, budget in 1u32..40, seed in 0u64..50) {
        let (sent, delivered, dropped) = run_ring(agents, budget, seed, NetworkModel::perfect());
        prop_assert_eq!(dropped, 0);
        prop_assert_eq!(sent, delivered);
        // External injection + budget forwards.
        prop_assert_eq!(sent, u64::from(budget) + 1);
    }
}
