//! The `any::<T>()` entry point for primitives.

use crate::strategy::Any;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        let mantissa = rng.gen::<f64>() * 2.0 - 1.0;
        let exponent = rng.gen_range(-8i32..9);
        mantissa * 10f64.powi(exponent)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        rng.gen_range(0x20u32..0x7f) as u8 as char
    }
}
