//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A size specification: exact, half-open, or inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// A strategy for `Vec<T>` with sizes drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `BTreeSet<T>` aiming for sizes in `size` (duplicates
/// are retried a bounded number of times, so a narrow value domain can
/// yield fewer elements than requested — matching upstream's behaviour
/// of treating the size as a target, not a guarantee).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < 20 * (target + 1) {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
