//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_recursive`, range and tuple and string-pattern strategies,
//! [`collection::vec`] / [`collection::btree_set`], [`arbitrary::any`],
//! the [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros and [`test_runner::ProptestConfig`] — on a
//! deterministic seeded generator. There is **no shrinking**: a failing
//! case panics with the case's seed so it can be replayed, which is
//! enough for CI purposes while offline.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Runs each property as a seeded loop of generated cases.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn prop_name(x in 0.0f64..1.0, v in prop::collection::vec(any::<bool>(), 1..9)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            while runner.next_case() {
                $(let $arg = runner.sample(&$strat);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// One strategy chosen uniformly among several (all arms must share a
/// value type). Weighted arms are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a property within a generated case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality within a generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}
