//! The `Strategy` trait and its combinators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking; a
/// strategy simply draws a value from the runner's RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates an intermediate value, then a strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for
    /// the shallower levels and wraps it; nesting is bounded by `depth`.
    /// The `desired_size` / `expected_branch_size` hints are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            // Bias towards the leaves so sizes stay modest.
            strat = Union::new(vec![base.clone(), base.clone(), deeper]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Chooses uniformly among several strategies of one value type
/// (the expansion of [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String literals are strategies: the pattern subset of
/// [`crate::string`] generates matching strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

/// Marker used by [`crate::arbitrary::any`].
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
