//! A tiny regex-pattern generator: enough of the regex language to serve
//! the `&str`-as-`Strategy` idiom the tests use (`"[a-z][a-z0-9_]{0,6}"`).
//!
//! Supported syntax: literal characters, character classes `[...]` with
//! ranges (`a-z0-9_`), and repetition `{m}` / `{m,n}` / `?` / `*` / `+`
//! (the unbounded quantifiers cap at 8).

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad range {lo}-{hi} in pattern {pattern}");
                        set.extend((lo..=hi).collect::<Vec<char>>());
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern}");
                i += 1; // the ']'
                set
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "trailing backslash in pattern {pattern}");
                let c = chars[i];
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated quantifier")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("quantifier min"),
                    n.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let m: usize = body.trim().parse().expect("quantifier count");
                    (m, m)
                }
            }
        } else if i < chars.len() && matches!(chars[i], '?' | '*' | '+') {
            let q = chars[i];
            i += 1;
            match q {
                '?' => (0, 1),
                '*' => (0, 8),
                _ => (1, 8),
            }
        } else {
            (1, 1)
        };
        assert!(
            !choices.is_empty(),
            "empty character class in pattern {pattern}"
        );
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

/// Generates a string matching `pattern` (see module docs for the
/// supported subset).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let count = rng.gen_range(atom.min..=atom.max);
        for _ in 0..count {
            out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_matching_identifiers() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = generate_matching("[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::new(2);
        assert_eq!(generate_matching("abc", &mut rng), "abc");
        let s = generate_matching("x{3}", &mut rng);
        assert_eq!(s, "xxx");
        for _ in 0..50 {
            let s = generate_matching("a?b+", &mut rng);
            assert!(s.trim_start_matches('a').chars().all(|c| c == 'b'));
        }
    }
}
