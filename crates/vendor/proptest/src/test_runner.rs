//! Case runner: a seeded RNG looping over generated cases.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng, Standard};

/// Configuration of a property run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; offline CI favours speed. The
        // generator is deterministic, so coverage is stable run to run.
        ProptestConfig { cases: 48 }
    }
}

/// The RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A deterministic RNG for a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform value from a range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        self.inner.gen_range(range)
    }

    /// A uniformly random primitive.
    pub fn gen<T: Standard>(&mut self) -> T {
        self.inner.gen()
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p)
    }
}

/// Drives one property: N cases from a name-derived seed.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    executed: u32,
    rng: TestRng,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl TestRunner {
    /// A runner whose RNG stream is derived from the property name, so
    /// every run of the same test binary generates the same cases.
    pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
        TestRunner {
            cases: config.cases,
            executed: 0,
            rng: TestRng::new(fnv1a(name.as_bytes())),
        }
    }

    /// Advances to the next case; `false` once all cases ran.
    pub fn next_case(&mut self) -> bool {
        if self.executed >= self.cases {
            return false;
        }
        self.executed += 1;
        true
    }

    /// Samples one value from a strategy.
    pub fn sample<S: Strategy + ?Sized>(&mut self, strategy: &S) -> S::Value {
        strategy.generate(&mut self.rng)
    }
}
