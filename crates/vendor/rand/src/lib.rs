//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the subset of the `rand 0.8` API the workspace
//! uses: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`]. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic, fast, and of
//! more than sufficient quality for seeded simulations and property
//! tests. It is *not* the same stream as upstream `StdRng` (ChaCha12),
//! so seeds are not portable across the two implementations; everything
//! in this workspace only relies on internal determinism.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// Types that can construct themselves from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// A source of randomness: one required method, everything else derived.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 high bits → the standard uniform-double construction.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }

    /// A uniform value from a range (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

/// Uniform sampling of a whole primitive type (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; keep half-open.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        (self.start as f64..self.end as f64).sample(rng) as f32
    }
}

impl SampleRange for RangeInclusive<f32> {
    type Output = f32;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        (*self.start() as f64..=*self.end() as f64).sample(rng) as f32
    }
}

/// Unbiased integer draw from `[0, span)` via 128-bit multiply-shift.
fn draw_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + draw_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.85..1.15);
            assert!((0.85..1.15).contains(&v), "{v}");
            let w = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&w), "{w}");
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0..3usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
        for _ in 0..1000 {
            let v = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
