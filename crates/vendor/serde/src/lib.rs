//! Offline stand-in for `serde`.
//!
//! No serde *format* crate is available offline, so serialization can
//! never actually run in this workspace; what the code needs is for the
//! `Serialize`/`Deserialize` *bounds* to type-check so that every data
//! structure is declared serializable (and the real serde can be swapped
//! in unchanged once a registry is reachable). The traits here are
//! therefore deliberately empty markers, and the derive macros emit
//! empty impls.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized from borrowed data.
pub trait Deserialize<'de>: Sized {}

/// Deserialization-side helpers.
pub mod de {
    /// Marker for types deserializable from any lifetime (owned).
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> super::Deserialize<'de> {}
}
