//! No-op `Serialize`/`Deserialize` derives for the offline serde
//! stand-in. The marker traits have no methods, so the derives only need
//! to name the type (and replicate its generic parameters) in an empty
//! impl block.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a `struct`/`enum`/`union` item header.
struct ItemHeader {
    name: String,
    /// Full generic parameter list, without the angle brackets.
    params_decl: String,
    /// Just the parameter names, for the `for Name<...>` position.
    param_names: Vec<String>,
}

fn parse_header(input: TokenStream) -> ItemHeader {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // the `[...]` group
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(
                    tokens.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id))
                if matches!(id.to_string().as_str(), "struct" | "enum" | "union") =>
            {
                i += 1;
                break;
            }
            Some(_) => i += 1,
            None => panic!("serde derive: no struct/enum/union found"),
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    i += 1;

    // Collect the generic parameter tokens between `<` and the matching `>`.
    let mut generics: Vec<TokenTree> = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1usize;
            while depth > 0 {
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        depth += 1;
                        generics.push(tokens[i].clone());
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth > 0 {
                            generics.push(tokens[i].clone());
                        }
                    }
                    Some(t) => generics.push(t.clone()),
                    None => panic!("serde derive: unbalanced generics"),
                }
                i += 1;
            }
        }
    }

    // Split at top-level commas and extract each parameter's name.
    let mut param_names = Vec::new();
    let mut depth = 0usize;
    let mut current: Vec<TokenTree> = Vec::new();
    let flush = |current: &mut Vec<TokenTree>, names: &mut Vec<String>| {
        if current.is_empty() {
            return;
        }
        let name = match &current[0] {
            TokenTree::Punct(p) if p.as_char() == '\'' => match current.get(1) {
                Some(TokenTree::Ident(id)) => format!("'{id}"),
                _ => panic!("serde derive: malformed lifetime parameter"),
            },
            TokenTree::Ident(id) if id.to_string() == "const" => match current.get(1) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => panic!("serde derive: malformed const parameter"),
            },
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: unsupported generic parameter {other:?}"),
        };
        names.push(name);
        current.clear();
    };
    for t in generics.iter() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                flush(&mut current, &mut param_names);
                continue;
            }
            _ => {}
        }
        current.push(t.clone());
    }
    flush(&mut current, &mut param_names);

    let params_decl = generics
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ");
    ItemHeader {
        name,
        params_decl,
        param_names,
    }
}

fn empty_impl(header: &ItemHeader, trait_path: &str, extra_lifetime: Option<&str>) -> String {
    let mut decl_parts = Vec::new();
    if let Some(lt) = extra_lifetime {
        decl_parts.push(lt.to_string());
    }
    if !header.params_decl.is_empty() {
        decl_parts.push(header.params_decl.clone());
    }
    let decl = if decl_parts.is_empty() {
        String::new()
    } else {
        format!("<{}>", decl_parts.join(", "))
    };
    let args = if header.param_names.is_empty() {
        String::new()
    } else {
        format!("<{}>", header.param_names.join(", "))
    };
    format!(
        "#[automatically_derived] impl{decl} {trait_path} for {}{args} {{}}",
        header.name
    )
}

/// Derives the empty `Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let header = parse_header(input);
    empty_impl(&header, "::serde::Serialize", None)
        .parse()
        .expect("generated impl parses")
}

/// Derives the empty `Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let header = parse_header(input);
    empty_impl(&header, "::serde::Deserialize<'de>", Some("'de"))
        .parse()
        .expect("generated impl parses")
}
