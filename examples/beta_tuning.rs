//! The §7 future-work experiment as a living system: a utility runs one
//! negotiation per day for two weeks, evaluating each (own process
//! control) and tuning β from experience; compared against the constant-β
//! prototype and the dynamic policies.
//!
//! ```text
//! cargo run --release --example beta_tuning
//! ```

use loadbal::core::beta::BetaPolicy;
use loadbal::core::utility_agent::own_process_control::OwnProcessControl;
use loadbal::prelude::*;

fn fortnight(
    config_for_day: impl Fn(&OwnProcessControl, u64) -> UtilityAgentConfig,
) -> (f64, f64, f64) {
    let mut opc = OwnProcessControl::new();
    let mut rounds = 0.0;
    let mut overuse = 0.0;
    let mut outlay = 0.0;
    for day in 0..14u64 {
        let config = config_for_day(&opc, day);
        let report = ScenarioBuilder::random(150, 0.35, day)
            .config(config)
            .build()
            .run();
        rounds += report.rounds().len() as f64;
        overuse += report.final_overuse_fraction();
        outlay += report.total_rewards().value();
        opc.record(&report);
    }
    (rounds / 14.0, overuse / 14.0, outlay / 14.0)
}

fn main() {
    println!("two-week run, one negotiation per day, 150 customers each\n");
    println!(
        "{:<34} {:>7} {:>11} {:>9}",
        "policy", "rounds", "overuse %", "outlay"
    );

    // The prototype: constant β, never adjusted.
    let (r, o, pay) = fortnight(|_, _| UtilityAgentConfig::paper());
    println!(
        "{:<34} {:>7.2} {:>11.2} {:>9.1}",
        "constant β = 2 (prototype)",
        r,
        100.0 * o,
        pay
    );

    // §7: "dynamically varying the value of beta on the basis of
    // experience" — the own-process-control tuner.
    let (r, o, pay) = fortnight(|opc, _| opc.tune(UtilityAgentConfig::paper()));
    println!(
        "{:<34} {:>7.2} {:>11.2} {:>9.1}",
        "experience-tuned β",
        r,
        100.0 * o,
        pay
    );

    // Within-negotiation dynamic policies.
    for policy in [BetaPolicy::adaptive(1.0), BetaPolicy::annealing(4.0, 0.7)] {
        let (r, o, pay) =
            fortnight(move |_, _| UtilityAgentConfig::paper().with_beta_policy(policy));
        println!(
            "{:<34} {:>7.2} {:>11.2} {:>9.1}",
            policy.to_string(),
            r,
            100.0 * o,
            pay
        );
    }
}
