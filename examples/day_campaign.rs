//! The grid→negotiation pipeline on one simulated week: a 300-household
//! `powergrid` population's demand is predicted day by day, every
//! detected peak becomes a negotiation scenario whose customer profiles
//! are derived from the households' physical saving potential, and the
//! sans-io engine negotiates them all — each day's peaks fanned across
//! cores by `ScenarioSweep`, byte-identical to sequential execution.
//!
//! The campaign runs twice: open-loop (prediction history holds the raw
//! simulated actuals) and closed-loop (each day's negotiated cut-downs
//! are applied to that day's consumption before it enters history), so
//! the printout shows how feedback shrinks the following days' peaks.
//!
//! ```text
//! cargo run --release --example day_campaign
//! ```

use loadbal::prelude::*;
use powergrid::calendar::Horizon;
use powergrid::prediction::WeatherRegression;

fn main() {
    let homes = PopulationBuilder::new().households(300).build(42);
    let horizon = Horizon::new(8, 0, Season::Winter); // Monday-start week + 1
    let runner = CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
        .predictor(FixedPredictor(WeatherRegression::calibrated()))
        .build();
    let open = runner.run();
    println!(
        "open loop: {} negotiations over {} evaluated days \
         (normal capacity {:.0} kW)",
        open.negotiations(),
        open.days_evaluated(),
        runner.production().normal_capacity().value()
    );
    for day in &open.days {
        match day.peaks.as_slice() {
            [] => println!("  day {}: stable — no negotiable peak", day.day.index),
            peaks => {
                for p in peaks {
                    println!("  day {}: {}", day.day.index, p);
                }
            }
        }
    }

    let sequential = runner.run_sequential();
    assert_eq!(
        open, sequential,
        "parallel campaign must be byte-identical to sequential"
    );
    assert!(open.all_converged(), "every peak negotiation converges");

    println!();
    print!("{open}");

    // The same campaign closed-loop: negotiated cut-downs feed back into
    // the consumption the next prediction is trained on.
    let closed = CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
        .predictor(FixedPredictor(WeatherRegression::calibrated()))
        .feedback(ClosedLoop)
        .build()
        .run();
    assert!(closed.all_converged());
    println!();
    print!("{closed}");
    println!(
        "\nfeedback fed {:.1} kWh of cut-downs into prediction history; \
         shaved {:.1} kWh (open loop: {:.1} kWh)",
        closed.total_feedback().value(),
        closed.total_energy_shaved().value(),
        open.total_energy_shaved().value()
    );
    println!(
        "determinism check passed: parallel == sequential over {} negotiations",
        open.negotiations()
    );
}
