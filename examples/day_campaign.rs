//! The grid→negotiation pipeline on one simulated week: a 300-household
//! `powergrid` population's demand is predicted day by day, every
//! detected peak becomes a negotiation scenario whose customer profiles
//! are derived from the households' physical saving potential, and the
//! sans-io engine negotiates them all — fanned across cores by
//! `ScenarioSweep`, byte-identical to sequential execution.
//!
//! ```text
//! cargo run --release --example day_campaign
//! ```

use loadbal::prelude::*;
use powergrid::calendar::Horizon;
use powergrid::prediction::WeatherRegression;

fn main() {
    let homes = PopulationBuilder::new().households(300).build(42);
    let horizon = Horizon::new(8, 0, Season::Winter); // Monday-start week + 1
    let plan = CampaignPlan::build(
        &homes,
        &WeatherModel::winter(),
        &horizon,
        &WeatherRegression::calibrated(),
        CampaignConfig::default(),
    );
    println!(
        "planned {} negotiations over {} evaluated days \
         (normal capacity {:.0} kW)",
        plan.len(),
        plan.days().len(),
        plan.production().normal_capacity().value()
    );
    for day in plan.days() {
        match day.peaks.as_slice() {
            [] => println!("  day {}: stable — no negotiable peak", day.day.index),
            peaks => {
                for p in peaks {
                    println!("  day {}: {}", day.day.index, p);
                }
            }
        }
    }

    let parallel = plan.run();
    let sequential = plan.run_sequential();
    assert_eq!(
        parallel, sequential,
        "parallel campaign must be byte-identical to sequential"
    );
    assert!(parallel.all_converged(), "every peak negotiation converges");

    println!();
    print!("{parallel}");
    println!(
        "\ndeterminism check passed: parallel == sequential over {} negotiations",
        parallel.negotiations()
    );
}
