//! Clean-vs-faulty season smoke (E18's shape, CI-sized): a 2-cell
//! winter fleet negotiates once over a *perfect* simulated network —
//! asserted byte-identical to the synchronous season, the paper's
//! location-transparency claim — and once over a lossy one, with the
//! resilience layer diffing the two peak by peak.
//!
//! ```text
//! cargo run --release --example fault_resilience
//! ```

use loadbal::core::fleet::FleetRunner;
use loadbal::prelude::*;
use powergrid::calendar::Horizon;
use powergrid::prediction::WeatherRegression;
use std::num::NonZeroUsize;

fn main() {
    let north = PopulationBuilder::new().households(80).build(1);
    let south = PopulationBuilder::new().households(60).build(2);
    let weather = WeatherModel::winter();
    let horizon = Horizon::new(6, 0, Season::Winter); // 3 warmup + 3 evaluated
    let seed = 42;
    let fleet = |mode: ExecutionMode| {
        let cell = |homes| {
            CampaignBuilder::new(homes, &weather, &horizon)
                .predictor(FixedPredictor(WeatherRegression::calibrated()))
                .feedback(ClosedLoop)
                .build()
        };
        FleetRunner::new()
            .cell("north", cell(&north))
            .cell("south", cell(&south))
            .threads(NonZeroUsize::new(2).expect("2 > 0"))
            .report_tier(ReportTier::Settlement)
            .execution(mode)
    };

    // Distributed over a perfect network == in-process sync, byte for
    // byte: the execution substrate is invisible to the negotiation.
    let sync = fleet(ExecutionMode::sync()).run();
    let (clean, clean_traffic) =
        fleet(ExecutionMode::distributed_clean().with_seed(seed)).run_instrumented();
    assert_eq!(
        clean, sync,
        "distributed-clean season must be byte-identical to sync"
    );
    assert!(sync.negotiations() > 0, "winter evenings must carry peaks");
    println!(
        "clean == sync: {} peaks across {} cells, {} wire messages, 0 lost\n",
        clean.negotiations(),
        clean.len(),
        clean_traffic.iter().map(|t| t.messages_sent).sum::<u64>()
    );

    // One faulty class: 15 % message loss. Every campaign still
    // terminates; the report quantifies what the loss cost.
    let report = ResilienceReport::against_baseline(
        &clean,
        &clean_traffic,
        seed,
        &[FaultClass::Drop],
        |mode| fleet(mode).run_instrumented(),
    );
    print!("{report}");

    let drop = report.outcome(FaultClass::Drop).expect("drop injected");
    assert!(drop.matched_peaks() > 0, "faulty season must negotiate");
    assert!(
        drop.traffic().messages_dropped > 0,
        "a 15% lossy season must lose messages"
    );
    assert!(
        drop.traffic().deadline_forced_rounds > 0,
        "lost responses must force rounds onto the deadline"
    );
    println!(
        "\nfaulty season survived: {} peaks diffed, {} dropped messages, {} deadline-forced rounds",
        drop.matched_peaks(),
        drop.traffic().messages_dropped,
        drop.traffic().deadline_forced_rounds
    );
}
