//! A fleet of campaigns on one shared worker pool: two grid cells,
//! three evaluated days each, two workers — the CI smoke for the fleet
//! layer (grid → prediction → peaks → scenarios → campaign → fleet).
//!
//! While one cell is between days (its closed-loop feedback is
//! sequential), the pool's workers drain the other cell's peak
//! negotiations — and the result is still byte-identical to running
//! each campaign alone.
//!
//! ```text
//! cargo run --release --example fleet
//! ```

use loadbal::core::fleet::FleetRunner;
use loadbal::prelude::*;
use powergrid::calendar::Horizon;
use powergrid::prediction::WeatherRegression;
use std::num::NonZeroUsize;

fn main() {
    // Two cells of one service area: distinct cohorts, shared weather.
    let north = PopulationBuilder::new().households(150).build(1);
    let south = PopulationBuilder::new().households(100).build(2);
    let weather = WeatherModel::winter();
    let horizon = Horizon::new(6, 0, Season::Winter); // 3 warmup + 3 evaluated
    let cell = |homes| {
        CampaignBuilder::new(homes, &weather, &horizon)
            .predictor(FixedPredictor(WeatherRegression::calibrated()))
            .feedback(ClosedLoop)
            .build()
    };

    let fleet = FleetRunner::new()
        .cell("north", cell(&north))
        .cell("south", cell(&south))
        .threads(NonZeroUsize::new(2).expect("2 > 0"));

    let report = fleet.run();
    print!("{report}");

    // The scheduling is free; the semantics are not.
    assert_eq!(
        report,
        fleet.run_sequential(),
        "interleaved fleet must be byte-identical to sequential"
    );
    for (cell, (label, campaign)) in report.cells.iter().zip(fleet.cells()) {
        assert_eq!(&cell.label, label);
        assert_eq!(
            cell.report,
            campaign.run_sequential(),
            "{label}: fleet cell must equal its standalone campaign"
        );
    }
    assert!(report.all_converged(), "every peak negotiation converges");
    assert!(
        report.negotiations() > 0,
        "winter evenings must peak above 90% capacity"
    );
    println!(
        "\nfleet == sequential == standalone campaigns: {} peaks across {} cells, all converged",
        report.negotiations(),
        report.len()
    );
}
