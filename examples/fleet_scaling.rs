//! Distributed negotiations at scale over imperfect networks: one
//! Utility Agent process versus up to thousands of Customer Agent
//! processes, with latency and message loss, fanned across CPU cores.
//!
//! ```text
//! cargo run --release --example fleet_scaling
//! ```

use loadbal::core::distributed::run_distributed;
use loadbal::massim::clock::SimDuration;
use loadbal::massim::network::NetworkModel;
use loadbal::massim::threaded::run_seeds;
use loadbal::prelude::*;

fn main() {
    println!("distributed reward-table negotiations (latency 1–20 ticks)\n");
    println!(
        "{:>9} {:>9} {:>6} {:>10} {:>9} {:>11}",
        "customers", "drop %", "rounds", "delivered", "dropped", "final ou %"
    );
    for &n in &[50usize, 500, 2000] {
        for &drop in &[0.0, 0.1, 0.3] {
            let scenario = ScenarioBuilder::random(n, 0.35, n as u64).build();
            let network = if drop > 0.0 {
                NetworkModel::uniform(1, 20).with_drop_probability(drop)
            } else {
                NetworkModel::uniform(1, 20)
            };
            let outcome = run_distributed(&scenario, network, 7, SimDuration::from_ticks(200));
            println!(
                "{:>9} {:>9.0} {:>6} {:>10} {:>9} {:>11.1}",
                n,
                100.0 * drop,
                outcome.report.rounds().len(),
                outcome.metrics.messages_delivered,
                outcome.metrics.messages_dropped,
                100.0 * outcome.report.final_overuse_fraction(),
            );
        }
    }

    // Parameter sweep across seeds, in parallel, deterministic per seed.
    println!("\nparallel seed sweep (500 customers, 10 % loss): final overuse per seed");
    let seeds: Vec<u64> = (0..8).collect();
    let results = run_seeds(&seeds, |seed| {
        let scenario = ScenarioBuilder::random(500, 0.35, seed).build();
        let outcome = run_distributed(
            &scenario,
            NetworkModel::uniform(1, 20).with_drop_probability(0.1),
            seed,
            SimDuration::from_ticks(200),
        );
        (seed, outcome.report.final_overuse_fraction())
    });
    for (seed, overuse) in results {
        println!("  seed {seed}: {:.1} %", 100.0 * overuse);
    }
}
