//! The full pipeline on a realistic population: synthesize households,
//! predict tomorrow's demand from history and weather, detect the peak,
//! let the UA pick a strategy (§3.2.4), and compare all three
//! announcement methods on the resulting scenario.
//!
//! ```text
//! cargo run --release --example method_comparison
//! ```

use loadbal::core::strategy::{select_method, NegotiationContext};
use loadbal::core::utility_agent::agent_specific::{evaluate_prediction, predict_balance};
use loadbal::prelude::*;
use powergrid::peak::PeakDetector;
use powergrid::prediction::WeatherRegression;

fn main() {
    let axis = TimeAxis::quarter_hourly();
    let homes = PopulationBuilder::new().households(300).build(42);

    // History: the last five winter days.
    let model = WeatherModel::winter();
    let history: Vec<Series> = (0..5)
        .map(|day| {
            let weather = model.temperatures(&axis, day);
            aggregate_demand(&homes, &weather, &axis, day)
                .series()
                .clone()
        })
        .collect();

    // Tomorrow: a cold snap.
    let forecast = model.with_anomaly(-5.0).temperatures(&axis, 6);
    let predicted = predict_balance(&WeatherRegression::calibrated(), &history, &forecast);

    // Production sized so the evening peak crosses into the expensive band.
    let capacity = Kilowatts(predicted.max() / axis.slot_hours() * 0.85);
    let production = ProductionModel::two_tier(capacity, Kilowatts(capacity.value() * 2.0));
    let assessment = evaluate_prediction(&predicted, &production, &PeakDetector::new(0.05));

    let Some(peak) = assessment.peak().copied() else {
        println!("stable situation — no negotiation needed");
        return;
    };
    println!("predicted peak: {peak}\nstrategy selection (§3.2.4):");
    for rounds_available in [1u32, 5, 20] {
        let (method, rationale) = select_method(NegotiationContext {
            rounds_available,
            overuse: peak.overuse_fraction(),
            customers: homes.len(),
        });
        println!("  {rounds_available:>2} rounds available → {method}: {rationale}");
    }

    // Build the scenario from the physical households and compare methods.
    let scenario = ScenarioBuilder::from_households(
        &homes,
        &axis,
        forecast.mean(),
        peak.interval,
        1.0 / (1.0 + peak.overuse_fraction()),
        42,
    )
    .build();
    println!(
        "\nscenario: {} customers, initial overuse {:.1} %",
        scenario.customers.len(),
        100.0 * scenario.initial_overuse_fraction()
    );
    println!(
        "{:<18} {:>6} {:>9} {:>11} {:>9}",
        "method", "rounds", "messages", "overuse %", "outlay"
    );
    // One sweep cell per announcement method, fanned across cores; each
    // cell drives the shared sans-io engine through the SyncDriver.
    let sweep = AnnouncementMethod::all()
        .into_iter()
        .fold(ScenarioSweep::new(), |sweep, method| {
            sweep.point_with(method.to_string(), scenario.clone(), method)
        });
    for outcome in sweep.run() {
        let report = &outcome.report;
        println!(
            "{:<18} {:>6} {:>9} {:>11.1} {:>9.1}",
            outcome.label,
            report.rounds().len(),
            report.total_messages(),
            100.0 * report.final_overuse_fraction(),
            report.total_rewards().value(),
        );
    }
}
