//! Reproduces the paper's Figures 6–9 as terminal output: the Utility
//! Agent's view (capacity, predicted use, per-round reward tables) and
//! the highlighted Customer Agent's view (thresholds vs offers, chosen
//! cut-downs), then verifies the monotonic-concession invariants on the
//! recorded trace.
//!
//! ```text
//! cargo run --example negotiation_trace
//! ```

use loadbal::core::concession::{verify_announcements, verify_bids};
use loadbal::prelude::*;

fn main() {
    let scenario = ScenarioBuilder::paper_figure_6().build();
    let report = scenario.run();

    println!("=== Utility Agent view (Figures 6–7) ===");
    println!(
        "normal capacity 100.0 | predicted usage {:.1} | predicted overuse {:.1}",
        scenario.initial_total().value(),
        report.initial_overuse().value()
    );
    for round in report.rounds() {
        let table = round.table.as_ref().expect("table present");
        print!("round {} | rewards:", round.round);
        for (c, m) in table.entries() {
            print!(" {c}→{:.1}", m.value());
        }
        println!(
            " | predicted use {:.1} | overuse {:.1}",
            round.predicted_total.value(),
            (round.predicted_total - report.normal_use()).value()
        );
    }
    println!("outcome: {}\n", report.status());

    println!("=== Customer Agent view (Figures 8–9) ===");
    let prefs = &scenario.customers[0].preferences;
    println!("private table: {prefs}");
    for round in report.rounds() {
        let table = round.table.as_ref().expect("table present");
        println!("round {}:", round.round);
        for &(c, offered) in table.entries() {
            let Some(required) = prefs.required_for(c) else {
                continue;
            };
            println!(
                "  cut-down {c}: offered {:6.2} vs required {:6.2} → {}",
                offered.value(),
                required.value(),
                if prefs.accepts(c, offered) {
                    "acceptable"
                } else {
                    "not acceptable"
                }
            );
        }
        println!("  → preferred cut-down: {}", round.bids[0]);
    }

    println!("\n=== Protocol invariants (§3.1) ===");
    let tables: Vec<_> = report
        .rounds()
        .iter()
        .filter_map(|r| r.table.as_deref().cloned())
        .collect();
    let bids: Vec<_> = report.rounds().iter().map(|r| r.bids.clone()).collect();
    println!(
        "announcements monotone: {}",
        if verify_announcements(&tables).is_ok() {
            "yes"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "bids never retreat:     {}",
        if verify_bids(&bids).is_ok() {
            "yes"
        } else {
            "VIOLATED"
        }
    );
}
