//! Prints the process-abstraction hierarchies of Figures 2–5 plus the
//! full generic agent models of §5, rendered from the DESIRE component
//! structures the negotiation actually runs on.
//!
//! ```text
//! cargo run --example process_tree
//! ```

use loadbal::core::desire_host::{
    ca_cooperation_tree, ca_own_process_control_tree, customer_agent_tree, ua_cooperation_tree,
    ua_own_process_control_tree, utility_agent_tree,
};
use loadbal::desire::render::render_tree;

fn main() {
    println!("Figure 2 — own process control of the Utility Agent\n");
    println!("{}", render_tree(&ua_own_process_control_tree()));
    println!("Figure 3 — cooperation management of the Utility Agent\n");
    println!("{}", render_tree(&ua_cooperation_tree()));
    println!("Figure 4 — own process control of the Customer Agent\n");
    println!("{}", render_tree(&ca_own_process_control_tree()));
    println!("Figure 5 — cooperation management of the Customer Agent\n");
    println!("{}", render_tree(&ca_cooperation_tree()));
    println!("§5.1 — the full Utility Agent (generic agent model)\n");
    println!("{}", render_tree(&utility_agent_tree()));
    println!("§5.2 — the full Customer Agent (generic agent model)\n");
    println!("{}", render_tree(&customer_agent_tree()));
}
