//! Quickstart: run the paper's calibrated negotiation and print the
//! result.
//!
//! `Scenario::run()` is a facade over the sans-io `NegotiationEngine`:
//! a `SyncDriver` pumps `Effect`s between one `UtilityEngine` and the
//! `CustomerEngine`s. The distributed and DESIRE-hosted modes drive the
//! very same engine, so what this example prints is what every mode
//! produces.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use loadbal::prelude::*;

fn main() {
    // The Figure 6/7 scenario: normal capacity 100, predicted use 135.
    let scenario = ScenarioBuilder::paper_figure_6().build();
    println!(
        "Scenario: {} customers, predicted use {:.1}, capacity {:.1} ({:.0} % overuse)\n",
        scenario.customers.len(),
        scenario.initial_total().value(),
        scenario.normal_use.value(),
        100.0 * scenario.initial_overuse_fraction(),
    );

    // One round trip of the engine by hand, to make the sans-io shape
    // visible: the Utility side announces, a customer answers.
    let mut utility = UtilityEngine::new(&scenario);
    let mut first_customer = CustomerEngine::for_customer(&scenario, 0);
    utility.handle(Input::Start);
    while let Some(effect) = utility.poll_effect() {
        if let Effect::Send {
            to: Peer::Customer(0),
            msg,
        } = effect
        {
            println!("engine: UA → CA0   {msg}");
            first_customer.handle(Input::Received {
                from: Peer::Utility,
                msg,
            });
            while let Some(Effect::Send { msg, .. }) = first_customer.poll_effect() {
                println!("engine: CA0 → UA   {msg}");
            }
        }
    }
    println!();

    // The full negotiation through the synchronous driver.
    let report = scenario.run();
    println!("Outcome: {report}");
    for round in report.rounds() {
        let table = round
            .table
            .as_ref()
            .expect("reward-table rounds carry tables");
        println!(
            "  round {}: reward(0.4) = {:5.2}  predicted use = {:6.1}  overuse = {:5.1}",
            round.round,
            table.reward_for(Fraction::clamped(0.4)).value(),
            round.predicted_total.value(),
            (round.predicted_total - report.normal_use()).value(),
        );
    }

    // Settlement accounting: both sides must gain (§3.1). Peak energy is
    // expensive — the spread between the tiers is what cut-downs are
    // worth to the utility (rewards are in the paper's abstract units).
    let producer = loadbal::core::producer_agent::ProducerAgent::new(ProductionModel::with_costs(
        Kilowatts(50.0),
        Kilowatts(80.0),
        PricePerKwh(0.3),
        PricePerKwh(12.0),
    ));
    let summary =
        loadbal::core::outcome::SettlementSummary::compute(&scenario, &report, &producer, 2.0);
    println!("\nSettlement: {summary}");
}
