//! Tiered season reporting + binary archives: a two-cell fleet runs a
//! winter season at the `Settlement` tier (per-customer settlements and
//! economics, no round-by-round trace), writes the season to a compact
//! binary archive, and reads it back — the CI smoke for the reporting
//! layer (fleet → tiered report → archive → `season-inspect`).
//!
//! ```text
//! cargo run --release --example season_archive [OUT.lbsa]
//! ```
//!
//! The archive path defaults to `season.lbsa` in the temp directory;
//! pass a path to keep the file for `season-inspect list|dump|diff`.

use loadbal::archive::{write_fleet, SeasonArchive};
use loadbal::core::fleet::FleetRunner;
use loadbal::core::session::ReportTier;
use loadbal::prelude::*;
use powergrid::calendar::Horizon;
use powergrid::prediction::WeatherRegression;

fn main() {
    let path = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("season.lbsa"));

    // Two cells of one service area, as in `examples/fleet.rs`, but
    // retaining only what a season of record-keeping needs: the
    // Settlement tier stores who cut down by how much for what reward,
    // and drops the round-by-round negotiation trace at the source.
    let north = PopulationBuilder::new().households(150).build(1);
    let south = PopulationBuilder::new().households(100).build(2);
    let weather = WeatherModel::winter();
    let horizon = Horizon::new(6, 0, Season::Winter); // 3 warmup + 3 evaluated
    let cell = |homes| {
        CampaignBuilder::new(homes, &weather, &horizon)
            .predictor(FixedPredictor(WeatherRegression::calibrated()))
            .feedback(ClosedLoop)
            .build()
    };
    let fleet = FleetRunner::new()
        .cell("north", cell(&north))
        .cell("south", cell(&south))
        .report_tier(ReportTier::Settlement);

    let report = fleet.run();
    for cell in &report.cells {
        for outcome in &cell.report.outcomes {
            assert!(
                outcome.report.rounds().is_empty(),
                "the settlement tier must not store round records"
            );
            assert!(
                !outcome.report.settlements().is_empty(),
                "the settlement tier must store settlements"
            );
        }
    }

    let stats = write_fleet(&path, &report, ReportTier::Settlement).expect("write archive");

    // Reading the archive back yields the report exactly — the binary
    // codec is bit-faithful, including every f64.
    let mut archive = SeasonArchive::open(&path).expect("open archive");
    assert_eq!(archive.tier(), ReportTier::Settlement);
    let decoded = archive.read_fleet().expect("decode fleet season");
    assert_eq!(decoded, report, "archive round trip must be exact");

    // Single days are seekable without decoding the season.
    let first_cell = &archive.index().cells[0];
    let first_day = first_cell.days[0].day_index;
    let day = archive.read_day(0, first_day).expect("seek one day");
    assert_eq!(day, report.cells[0].report.days[0]);

    println!(
        "season archive: {} cells, {} days, {} outcomes, {} bytes -> {}",
        stats.cells,
        stats.days,
        stats.outcomes,
        stats.bytes_written,
        path.display()
    );
    println!(
        "round trip exact at tier {}; inspect with: season-inspect list {}",
        archive.tier(),
        path.display()
    );
}
