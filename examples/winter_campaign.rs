//! A multi-week winter campaign: the full daily cycle of the paper's
//! system over a [`Horizon`] with weekday/weekend structure —
//!
//! 1. the UA predicts tomorrow's demand from history and the weather
//!    forecast (backtesting several statistical models first),
//! 2. peak detection decides whether negotiation is warranted (§5.1.2),
//! 3. if so, a reward-table negotiation runs and is settled,
//! 4. the UA's own-process-control records and tunes from experience.
//!
//! ```text
//! cargo run --release --example winter_campaign
//! ```

use loadbal::core::outcome::SettlementSummary;
use loadbal::core::producer_agent::ProducerAgent;
use loadbal::core::utility_agent::agent_specific::{evaluate_prediction, predict_balance};
use loadbal::core::utility_agent::own_process_control::OwnProcessControl;
use loadbal::prelude::*;
use powergrid::calendar::Horizon;
use powergrid::peak::PeakDetector;
use powergrid::prediction::{
    backtest, select_best, HoltTrend, LoadPredictor, MovingAverage, SeasonalNaive,
};

fn main() {
    let axis = TimeAxis::quarter_hourly();
    let homes = PopulationBuilder::new().households(250).build(99);
    let weather_model = WeatherModel::winter();
    let horizon = Horizon::new(21, 0, Season::Winter); // three weeks from a Monday

    // Generate the campaign's actual demand and weather, day by day.
    let mut actuals: Vec<Series> = Vec::new();
    let mut weathers: Vec<Series> = Vec::new();
    for day in horizon.days() {
        // Mid-campaign cold snap.
        let anomaly = if (8..12).contains(&day.index) {
            -6.0
        } else {
            0.0
        };
        let w = weather_model
            .clone()
            .with_anomaly(anomaly)
            .temperatures(&axis, day.index);
        let mut demand = aggregate_demand(&homes, &w, &axis, day.index)
            .series()
            .clone();
        demand = demand.scale(day.day_type.intensity_factor());
        actuals.push(demand);
        weathers.push(w);
    }

    // Pick the best predictor by rolling backtest over the first week.
    let ma = MovingAverage::new(3);
    let naive = SeasonalNaive;
    let holt = HoltTrend::new(0.5, 0.2);
    let predictors: [&dyn LoadPredictor; 3] = [&ma, &naive, &holt];
    let ranking =
        backtest(&predictors, &actuals[..7], &weathers[..7], 3).expect("a week leaves eval days");
    println!("predictor backtest over week 1 (MAPE, best first):");
    for row in &ranking {
        println!("  {:<18} {:.3}", row.name, row.mean_mape);
    }
    let best = select_best(&predictors, &actuals[..7], &weathers[..7], 3)
        .expect("a week leaves eval days");
    assert_eq!(best.name(), ranking[0].name);

    // Capacity sized to make cold-snap evenings peak above normal.
    let typical_peak = actuals[0].max() / axis.slot_hours();
    // Peak production is drastically more expensive than base production
    // (rewards are in the paper's abstract units, so the spread carries
    // the economic weight of the peak).
    let production = ProductionModel::with_costs(
        Kilowatts(typical_peak * 1.02),
        Kilowatts(typical_peak * 2.0),
        PricePerKwh(0.3),
        PricePerKwh(10.0),
    );
    let producer = ProducerAgent::new(production.clone());
    let detector = PeakDetector::new(0.03);
    let mut opc = OwnProcessControl::new();

    println!("\nday  type     peak?   rounds  overuse before→after   utility net");
    let mut negotiations = 0;
    for day in horizon.days().skip(7) {
        let d = day.index as usize;
        let predicted = predict_balance(best, &actuals[..d], &weathers[d]);
        let assessment = evaluate_prediction(&predicted, &production, &detector);
        match assessment.peak() {
            None => {
                println!("{:>3}  {:<8} stable", day.index, day.day_type.to_string());
            }
            Some(peak) => {
                negotiations += 1;
                let config = opc.tune(UtilityAgentConfig::paper());
                let scenario = ScenarioBuilder::from_households(
                    &homes,
                    &axis,
                    weathers[d].mean(),
                    peak.interval,
                    1.0 / (1.0 + peak.overuse_fraction()),
                    day.index,
                )
                .config(config)
                .build();
                let report = scenario.run();
                let summary = SettlementSummary::compute(
                    &scenario,
                    &report,
                    &producer,
                    peak.interval.hours(axis),
                );
                opc.record(&report);
                println!(
                    "{:>3}  {:<8} PEAK    {:>6}  {:>7.1}% → {:>5.1}%    {:>10.1}",
                    day.index,
                    day.day_type.to_string(),
                    report.rounds().len(),
                    100.0 * report.initial_overuse_fraction(),
                    100.0 * report.final_overuse_fraction(),
                    summary.utility_net_gain.value(),
                );
            }
        }
    }
    println!(
        "\n{negotiations} negotiations over {} evaluated days; β after tuning: {:.2}",
        horizon.len() - 7,
        opc.tune(UtilityAgentConfig::paper()).formula.beta
    );
}
