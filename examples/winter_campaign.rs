//! A multi-week winter campaign with all three self-tuning loops
//! closed — the full daily cycle of the paper's system over a
//! [`Horizon`] with weekday/weekend structure:
//!
//! 1. a rolling backtest re-selects the load predictor every few days
//!    from a sliding window of feedback-adjusted history
//!    ([`RollingWindow`]),
//! 2. peak detection decides whether negotiation is warranted (§5.1.2),
//! 3. reward-table negotiations run under the marginal-cost stop rule,
//!    and residual overuse left behind is renegotiated the same day on
//!    a fresh reward ladder ([`RenegotiateResidual`]),
//! 4. the UA's own-process-control records every settlement and tunes
//!    the next day's β and allowed-overuse band from experience
//!    ([`AdaptiveTuning`] — the §7 extension).
//!
//! ```text
//! cargo run --release --example winter_campaign
//! ```

use loadbal::core::utility_agent::own_process_control::{BETA_MAX, BETA_MIN};
use loadbal::prelude::*;
use powergrid::calendar::Horizon;

fn main() {
    let homes = PopulationBuilder::new().households(250).build(99);
    let horizon = Horizon::new(21, 0, Season::Winter); // three weeks from a Monday

    // Peak production drastically more expensive than base production
    // (rewards are in the paper's abstract units, so the spread carries
    // the economic weight of the peak).
    let runner = CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
        .warmup_days(7)
        .predictor(RollingWindow::standard(7, 3))
        .feedback(RenegotiateResidual::new(2, 0.005))
        .tuning(AdaptiveTuning)
        .stop_rule(MarginalCostStop)
        .production_costs(PricePerKwh(0.3), PricePerKwh(10.0))
        .build();

    let initial_beta = runner.ua_config().beta_policy.base_beta();
    println!(
        "three-week adaptive winter campaign: {} households, β starts at {initial_beta:.2}",
        homes.len()
    );

    // Step the campaign by hand to watch the loops close at each day
    // boundary (CampaignRunner::run() drives the same cycle).
    let mut progress = runner.progress();
    let mut scratch = NegotiationScratch::new();
    let mut renegotiation_passes = 0;
    println!("\nday  type     negotiations (label | rounds | overuse before→after)");
    while let Some(plan) = progress.next_day() {
        let reports: Vec<_> = (0..plan.scenarios().len())
            .map(|i| plan.negotiate(i, &mut scratch))
            .collect();
        let day = plan.day();
        if plan.is_stable() {
            println!("{:>3}  {:<8} stable", day.index, day.day_type.to_string());
        } else {
            for ((label, _), report) in plan.scenarios().iter().zip(&reports) {
                if label.contains("#r") {
                    renegotiation_passes += 1;
                }
                println!(
                    "{:>3}  {:<8} {:<18} {:>2} rounds | {:>5.1}% → {:>5.1}% | {:>7.2} kWh shaved",
                    day.index,
                    day.day_type.to_string(),
                    label,
                    report.digest().rounds,
                    100.0 * report.initial_overuse_fraction(),
                    100.0 * report.final_overuse_fraction(),
                    report.energy_shaved().value(),
                );
            }
        }
        progress.complete_day(plan, reports);
        let config = progress.ua_config();
        println!(
            "     tuned → β {:.2}, allowed-overuse band {:.3}",
            config.beta_policy.base_beta(),
            config.max_allowed_overuse
        );
    }
    let final_beta = progress.ua_config().beta_policy.base_beta();
    let final_band = progress.ua_config().max_allowed_overuse;
    let report = progress.finish();

    let mut predictors: Vec<&str> = report.days.iter().map(|d| d.predictor).collect();
    predictors.dedup();
    println!(
        "\n{} negotiations ({renegotiation_passes} renegotiation passes) over {} evaluated days",
        report.negotiations(),
        report.days_evaluated()
    );
    println!(
        "predictor trail: {} | β after tuning: {final_beta:.2} | band: {final_band:.3}",
        predictors.join(" → ")
    );
    println!(
        "{:.1} kWh shaved for {:.1} in rewards; {} economic stops; net gain {:.1}",
        report.total_energy_shaved().value(),
        report.total_rewards().value(),
        report.economics.economic_stops,
        report.economics.net_gain.value()
    );

    // Same qualitative outcome the hand-rolled loop showed: winter
    // evenings force negotiations, they all settle, and tuning keeps β
    // inside its documented range.
    assert!(report.negotiations() > 0, "winter must force negotiations");
    assert!(report.all_converged(), "every negotiation settles");
    assert!(report.total_energy_shaved().value() > 0.0);
    assert!((BETA_MIN..=BETA_MAX).contains(&final_beta));
    // The whole season replays byte-identically in parallel.
    assert_eq!(runner.run(), runner.run_sequential());
}
