//! Facade crate for the load-balancing multi-agent system — a Rust
//! reproduction of Brazier et al., *Agents Negotiating for Load Balancing
//! of Electricity Use* (ICDCS 1998).
//!
//! This crate re-exports the five member crates:
//!
//! * [`desire`] — the compositional agent framework (DESIRE) the paper's
//!   prototype was built in,
//! * [`powergrid`] — the electricity-domain substrate (households, demand,
//!   production, prediction),
//! * [`massim`] — the deterministic multi-agent message-passing runtime,
//! * [`core`] (crate `loadbal-core`) — the sans-io
//!   [`NegotiationEngine`](loadbal_core::engine) protocol core, the three
//!   drivers that execute it (synchronous, distributed, DESIRE-hosted),
//!   the three §3.2 announcement methods, and the parallel
//!   [`ScenarioSweep`](loadbal_core::sweep::ScenarioSweep) runner,
//! * [`archive`] (crate `loadbal-archive`) — compact versioned binary
//!   season archives for tiered campaign/fleet reports
//!   ([`ReportTier`](loadbal_core::session::ReportTier)), seekable per
//!   cell and per day, with the `season-inspect` CLI to list, dump and
//!   diff them (see `examples/season_archive.rs`).
//!
//! # Quickstart
//!
//! ```
//! use loadbal::prelude::*;
//!
//! // A small peak scenario: capacity 100, predicted use 135. `run()`
//! // drives the sans-io engine through the synchronous driver; the
//! // distributed and DESIRE-hosted modes execute the same engine.
//! let scenario = ScenarioBuilder::paper_figure_6().build();
//! let report = scenario.run();
//! assert!(report.converged());
//! assert!(report.final_overuse() < report.initial_overuse());
//! ```
//!
//! Sweeping a grid of scenarios across cores:
//!
//! ```
//! use loadbal::prelude::*;
//!
//! let outcomes = ScenarioSweep::new()
//!     .seeded_grid("demo", 15, 0.35, 0..4, |b| b)
//!     .run(); // std-thread parallel, byte-identical to sequential
//! assert_eq!(outcomes.len(), 4);
//! ```

#![forbid(unsafe_code)]

pub use desire;
pub use loadbal_archive as archive;
pub use loadbal_core as core;
pub use massim;
pub use powergrid;

/// The most frequently used items across all member crates.
pub mod prelude {
    pub use loadbal_core::prelude::*;
    pub use powergrid::prelude::*;
}
