//! Facade crate for the load-balancing multi-agent system — a Rust
//! reproduction of Brazier et al., *Agents Negotiating for Load Balancing
//! of Electricity Use* (ICDCS 1998).
//!
//! This crate re-exports the four member crates:
//!
//! * [`desire`] — the compositional agent framework (DESIRE) the paper's
//!   prototype was built in,
//! * [`powergrid`] — the electricity-domain substrate (households, demand,
//!   production, prediction),
//! * [`massim`] — the deterministic multi-agent message-passing runtime,
//! * [`core`] (crate `loadbal-core`) — the negotiating agents and the three
//!   announcement methods.
//!
//! # Quickstart
//!
//! ```
//! use loadbal::prelude::*;
//!
//! // A small peak scenario: capacity 100, predicted use 135.
//! let scenario = ScenarioBuilder::paper_figure_6().build();
//! let report = scenario.run();
//! assert!(report.converged());
//! assert!(report.final_overuse() < report.initial_overuse());
//! ```

pub use desire;
pub use loadbal_core as core;
pub use massim;
pub use powergrid;

/// The most frequently used items across all member crates.
pub mod prelude {
    pub use loadbal_core::prelude::*;
    pub use powergrid::prelude::*;
}
