//! The three execution modes — synchronous session, distributed massim
//! actors, DESIRE-hosted components — must agree on every outcome.
//!
//! Since the sans-io redesign all three are thin drivers over the same
//! `loadbal_core::engine` state machines, so agreement is by
//! construction; these tests pin that property against regressions in
//! the drivers' input/effect translation.

use loadbal::core::campaign::{CampaignBuilder, ClosedLoop, FixedPredictor};
use loadbal::core::desire_host::run_hosted;
use loadbal::core::distributed::run_distributed;
use loadbal::core::fleet::FleetRunner;
use loadbal::massim::clock::SimDuration;
use loadbal::massim::network::NetworkModel;
use loadbal::prelude::*;
use powergrid::calendar::Horizon;
use powergrid::prediction::MovingAverage;
use proptest::prelude::*;
use std::num::NonZeroUsize;

#[test]
fn three_modes_agree_on_the_paper_scenario() {
    let scenario = ScenarioBuilder::paper_figure_6().build();
    let sync = scenario.run();
    let dist = run_distributed(
        &scenario,
        NetworkModel::perfect(),
        1,
        SimDuration::from_ticks(100),
    );
    let hosted = run_hosted(&scenario);

    assert_eq!(sync.rounds().len(), 3);
    for other in [&dist.report, &hosted] {
        assert_eq!(other.rounds().len(), sync.rounds().len());
        assert_eq!(other.status(), sync.status());
        assert_eq!(other.final_bids(), sync.final_bids());
        assert_eq!(other.final_overuse(), sync.final_overuse());
    }
}

#[test]
fn three_modes_agree_on_random_scenarios() {
    for seed in [3u64, 17, 91] {
        let scenario = ScenarioBuilder::random(20, 0.35, seed).build();
        let sync = scenario.run();
        let dist = run_distributed(
            &scenario,
            NetworkModel::perfect(),
            seed,
            SimDuration::from_ticks(100),
        );
        let hosted = run_hosted(&scenario);
        assert_eq!(
            dist.report.final_bids(),
            sync.final_bids(),
            "seed {seed} (distributed)"
        );
        assert_eq!(
            hosted.final_bids(),
            sync.final_bids(),
            "seed {seed} (hosted)"
        );
        assert_eq!(dist.report.status(), sync.status(), "seed {seed}");
        assert_eq!(hosted.status(), sync.status(), "seed {seed}");
    }
}

#[test]
fn per_round_tables_agree_between_sync_and_distributed() {
    let scenario = ScenarioBuilder::random(25, 0.4, 7).build();
    let sync = scenario.run();
    let dist = run_distributed(
        &scenario,
        NetworkModel::perfect(),
        7,
        SimDuration::from_ticks(100),
    );
    for (a, b) in sync.rounds().iter().zip(dist.report.rounds()) {
        assert_eq!(a.round, b.round);
        assert_eq!(a.table, b.table);
        assert_eq!(a.bids, b.bids);
        assert_eq!(a.predicted_total, b.predicted_total);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The strengthened equivalence property: for random seeded
    /// scenarios the three drivers produce **identical**
    /// `NegotiationReport`s through the shared engine — not just the
    /// same final bids, but the same rounds, tables, message counts,
    /// settlements and status.
    #[test]
    fn all_three_drivers_produce_identical_reports(
        customers in 5usize..30,
        overuse in 0.2f64..0.5,
        seed in 0u64..10_000,
    ) {
        let scenario = ScenarioBuilder::random(customers, overuse, seed).build();
        let sync = scenario.run();

        // Distributed, perfect network: byte-identical report.
        let dist = run_distributed(
            &scenario,
            NetworkModel::perfect(),
            seed,
            SimDuration::from_ticks(100),
        );
        prop_assert_eq!(&dist.report, &sync);

        // DESIRE-hosted: identical report (announcements cross the
        // kernel's information links as micro-precision facts, but the
        // tabled levels and thresholds survive that encoding).
        let hosted = run_hosted(&scenario);
        prop_assert_eq!(&hosted, &sync);
    }

    /// The same property for the two non-prototype announcement methods,
    /// which the distributed driver gained with the shared engine.
    #[test]
    fn sync_and_distributed_agree_on_every_method(
        customers in 5usize..25,
        seed in 0u64..10_000,
    ) {
        for method in AnnouncementMethod::all() {
            let scenario = ScenarioBuilder::random(customers, 0.35, seed)
                .method(method)
                .build();
            let sync = scenario.run();
            let dist = run_distributed(
                &scenario,
                NetworkModel::perfect(),
                seed,
                SimDuration::from_ticks(100),
            );
            prop_assert_eq!(&dist.report, &sync, "method {}", method);
        }
    }

    /// The campaign hot path's distributed driver — the scratch-reusing
    /// [`NegotiationScratch::run_distributed_at`] — agrees with the sync
    /// pump at **every** report tier over a perfect network, through a
    /// scratch whose engine buffers were shaped by a previous
    /// negotiation.
    #[test]
    fn scratch_distributed_clean_matches_sync_at_any_tier(
        customers in 5usize..25,
        seed in 0u64..10_000,
        tier_ix in 0usize..3,
    ) {
        let tier =
            [ReportTier::Aggregate, ReportTier::Settlement, ReportTier::FullTrace][tier_ix];
        let scenario = ScenarioBuilder::random(customers, 0.35, seed).build();
        let mut scratch = NegotiationScratch::new();
        // Dirty the scratch first so the run goes through reset engines.
        let _ = scratch.run(
            &ScenarioBuilder::random(7, 0.4, 9).build(),
            AnnouncementMethod::RequestForBids,
        );
        let sync = scratch.run_at(&scenario, scenario.method, tier);
        let outcome = scratch.run_distributed_at(
            &scenario,
            scenario.method,
            tier,
            &NetworkModel::perfect(),
            seed,
            SimDuration::from_ticks(300),
        );
        prop_assert_eq!(&outcome.report, &sync, "tier {:?}", tier);
        prop_assert_eq!(outcome.deadline_forced_rounds, 0);
        prop_assert_eq!(outcome.metrics.messages_dropped, 0);
    }
}

#[test]
fn fleet_distributed_clean_is_byte_identical_to_sync_at_every_tier() {
    // The transparency claim at the top of the stack: a whole fleet —
    // shared pool, interleaved scheduling, closed-loop feedback —
    // reports the same bytes whether its peaks negotiate in-process or
    // as seeded simulations over a perfect network.
    let north = PopulationBuilder::new().households(35).build(1);
    let south = PopulationBuilder::new().households(25).build(2);
    let weather = WeatherModel::winter();
    let horizon = Horizon::new(5, 0, Season::Winter);
    for tier in [
        ReportTier::Aggregate,
        ReportTier::Settlement,
        ReportTier::FullTrace,
    ] {
        let fleet = |mode: ExecutionMode| {
            let cell = |homes| {
                CampaignBuilder::new(homes, &weather, &horizon)
                    .warmup_days(2)
                    .predictor(FixedPredictor(MovingAverage::new(2)))
                    .feedback(ClosedLoop)
                    .build()
            };
            FleetRunner::new()
                .cell("north", cell(&north))
                .cell("south", cell(&south))
                .threads(NonZeroUsize::new(3).expect("3 > 0"))
                .report_tier(tier)
                .execution(mode)
        };
        let sync = fleet(ExecutionMode::sync()).run();
        let distributed = fleet(ExecutionMode::distributed_clean().with_seed(7));
        let (interleaved, traffic) = distributed.run_instrumented();
        assert_eq!(interleaved, sync, "{tier:?}: interleaved");
        assert_eq!(
            distributed.run_sequential(),
            sync,
            "{tier:?}: sequential distributed"
        );
        // Real messages crossed the wire; none were lost or forced.
        let total: u64 = traffic.iter().map(|t| t.messages_sent).sum();
        assert!(total > 0, "{tier:?}: no wire traffic recorded");
        assert!(traffic.iter().all(|t| t.messages_dropped == 0));
        assert!(traffic.iter().all(|t| t.deadline_forced_rounds == 0));
    }
}
