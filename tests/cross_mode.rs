//! The three execution modes — synchronous session, distributed massim
//! actors, DESIRE-hosted components — must agree on every outcome.

use loadbal::core::desire_host::run_hosted;
use loadbal::core::distributed::run_distributed;
use loadbal::massim::clock::SimDuration;
use loadbal::massim::network::NetworkModel;
use loadbal::prelude::*;

#[test]
fn three_modes_agree_on_the_paper_scenario() {
    let scenario = ScenarioBuilder::paper_figure_6().build();
    let sync = scenario.run();
    let dist = run_distributed(
        &scenario,
        NetworkModel::perfect(),
        1,
        SimDuration::from_ticks(100),
    );
    let hosted = run_hosted(&scenario);

    assert_eq!(sync.rounds().len(), 3);
    for other in [&dist.report, &hosted] {
        assert_eq!(other.rounds().len(), sync.rounds().len());
        assert_eq!(other.status(), sync.status());
        assert_eq!(other.final_bids(), sync.final_bids());
        assert_eq!(other.final_overuse(), sync.final_overuse());
    }
}

#[test]
fn three_modes_agree_on_random_scenarios() {
    for seed in [3u64, 17, 91] {
        let scenario = ScenarioBuilder::random(20, 0.35, seed).build();
        let sync = scenario.run();
        let dist = run_distributed(
            &scenario,
            NetworkModel::perfect(),
            seed,
            SimDuration::from_ticks(100),
        );
        let hosted = run_hosted(&scenario);
        assert_eq!(dist.report.final_bids(), sync.final_bids(), "seed {seed} (distributed)");
        assert_eq!(hosted.final_bids(), sync.final_bids(), "seed {seed} (hosted)");
        assert_eq!(dist.report.status(), sync.status(), "seed {seed}");
        assert_eq!(hosted.status(), sync.status(), "seed {seed}");
    }
}

#[test]
fn per_round_tables_agree_between_sync_and_distributed() {
    let scenario = ScenarioBuilder::random(25, 0.4, 7).build();
    let sync = scenario.run();
    let dist = run_distributed(
        &scenario,
        NetworkModel::perfect(),
        7,
        SimDuration::from_ticks(100),
    );
    for (a, b) in sync.rounds().iter().zip(dist.report.rounds()) {
        assert_eq!(a.round, b.round);
        assert_eq!(a.table, b.table);
        assert_eq!(a.bids, b.bids);
        assert_eq!(a.predicted_total, b.predicted_total);
    }
}
