//! Compositional verification of the hosted negotiation, in the spirit
//! of the companion ICMAS'98 paper: temporal properties — pro-activeness,
//! reactiveness, safety — checked against the DESIRE kernel's execution
//! trace of the real Figure 6/7 negotiation.

use loadbal::core::desire_host::{
    customer_agent_tree, run_hosted_traced, ua_cooperation_tree, utility_agent_tree,
};
use loadbal::desire::checker::{check_design, Severity};
use loadbal::desire::engine::TruthValue;
use loadbal::desire::term::Atom;
use loadbal::desire::verify::Property;
use loadbal::prelude::*;

fn paper_trace() -> loadbal::desire::trace::Trace {
    let scenario = ScenarioBuilder::paper_figure_6().build();
    run_hosted_traced(&scenario).1
}

#[test]
fn ua_is_proactive() {
    // Pro-activeness: the UA eventually announces a reward table without
    // any external trigger.
    let trace = paper_trace();
    let property = Property::EventuallyDerived {
        component: "utility_agent".into(),
        atom: Atom::parse("announced(R, C, W)").unwrap(),
        value: TruthValue::True,
    };
    let verdict = property.check(&trace);
    assert!(verdict.holds, "{verdict}");
}

#[test]
fn cas_are_reactive() {
    // Reactiveness: every announcement round is followed by bids.
    let trace = paper_trace();
    let property = Property::Responds {
        trigger: Atom::parse("announce_round(R)").unwrap(),
        response: Atom::parse("bid(I, R2, C)").unwrap(),
    };
    let verdict = property.check(&trace);
    assert!(verdict.holds, "{verdict}");
}

#[test]
fn announcement_precedes_bids_and_termination() {
    let trace = paper_trace();
    let ordering = Property::All(vec![
        Property::DerivedBefore {
            first: Atom::parse("announce_round(R)").unwrap(),
            then: Atom::parse("bid(I, R2, C)").unwrap(),
        },
        Property::DerivedBefore {
            first: Atom::parse("bid(I, R2, C)").unwrap(),
            then: Atom::parse("negotiation_ended(R3)").unwrap(),
        },
    ]);
    let verdict = ordering.check(&trace);
    assert!(verdict.holds, "{verdict}");
}

#[test]
fn negotiation_terminates_exactly_once() {
    let trace = paper_trace();
    let ended = Property::EventuallyDerived {
        component: "utility_agent".into(),
        atom: Atom::parse("negotiation_ended(R)").unwrap(),
        value: TruthValue::True,
    };
    assert!(ended.check(&trace).holds);
    // No derivations at the UA after the end marker: count events after
    // the first `negotiation_ended`.
    let end_index = trace
        .first_derivation(&Atom::parse("negotiation_ended(3)").unwrap())
        .expect("three-round trace ends in round 3");
    let later_ua_derivations = trace.events()[end_index + 1..]
        .iter()
        .filter(|e| {
            matches!(
                e,
                loadbal::desire::trace::TraceEvent::FactDerived { path, .. }
                    if path.leaf().map(|n| n.as_str()) == Some("utility_agent")
            )
        })
        .count();
    assert_eq!(
        later_ua_derivations, 0,
        "the UA stays quiet after termination"
    );
}

#[test]
fn both_agents_activated_repeatedly() {
    let trace = paper_trace();
    for component in ["utility_agent", "customer_agents"] {
        let property = Property::ActivatedAtLeast {
            component: component.into(),
            at_least: 3, // once per negotiation round
        };
        let verdict = property.check(&trace);
        assert!(verdict.holds, "{component}: {verdict}");
    }
}

#[test]
fn paper_process_trees_pass_the_design_checker() {
    for tree in [
        utility_agent_tree(),
        customer_agent_tree(),
        ua_cooperation_tree(),
    ] {
        let issues = check_design(&tree);
        let errors: Vec<_> = issues
            .iter()
            .filter(|i| i.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "errors in {}: {errors:?}", tree.name());
    }
}
