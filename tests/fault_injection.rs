//! Fault injection: the distributed negotiation under message loss and
//! extreme latency, and the protocol-level equal-treatment invariant.

use loadbal::core::distributed::run_distributed;
use loadbal::core::message::Msg;
use loadbal::massim::clock::SimDuration;
use loadbal::massim::network::NetworkModel;
use loadbal::prelude::*;

#[test]
fn negotiations_survive_heavy_loss() {
    for &drop in &[0.1, 0.3, 0.5] {
        let scenario = ScenarioBuilder::random(40, 0.35, 5).build();
        let outcome = run_distributed(
            &scenario,
            NetworkModel::uniform(1, 10).with_drop_probability(drop),
            11,
            SimDuration::from_ticks(300),
        );
        assert!(
            outcome.report.converged(),
            "drop {drop}: {}",
            outcome.report
        );
        assert!(
            outcome.report.final_overuse() <= outcome.report.initial_overuse(),
            "drop {drop} must not worsen the peak"
        );
    }
}

#[test]
fn loss_costs_rounds_but_not_safety() {
    let scenario = ScenarioBuilder::random(60, 0.35, 9).build();
    let clean = run_distributed(
        &scenario,
        NetworkModel::uniform(1, 10),
        13,
        SimDuration::from_ticks(300),
    );
    let lossy = run_distributed(
        &scenario,
        NetworkModel::uniform(1, 10).with_drop_probability(0.4),
        13,
        SimDuration::from_ticks(300),
    );
    // Bids can only be delayed, never retracted — monotonic concession
    // means the lossy run's final overuse is at most slightly worse.
    assert!(lossy.report.converged());
    assert!(
        lossy.report.final_overuse_fraction() <= clean.report.final_overuse_fraction() + 0.25,
        "lossy {} vs clean {}",
        lossy.report.final_overuse_fraction(),
        clean.report.final_overuse_fraction()
    );
}

#[test]
fn duplicated_messages_are_idempotent_end_to_end() {
    // An at-least-once transport duplicating half of all messages: every
    // duplicate bid/announcement must be absorbed without changing the
    // outcome, so the run matches the loss-free synchronous reference
    // exactly (fixed latency keeps rounds aligned).
    use loadbal::core::methods::AnnouncementMethod;
    for method in AnnouncementMethod::all() {
        let scenario = ScenarioBuilder::random(30, 0.35, 12).method(method).build();
        let sync = scenario.run();
        let outcome = run_distributed(
            &scenario,
            NetworkModel::uniform(1, 1).with_duplicate_probability(0.5),
            17,
            SimDuration::from_ticks(300),
        );
        assert!(
            outcome.metrics.messages_duplicated > 0,
            "{method}: duplication must actually occur"
        );
        assert_eq!(
            outcome.report.final_bids(),
            sync.final_bids(),
            "{method}: duplicated messages changed the outcome"
        );
        assert_eq!(outcome.report.status(), sync.status(), "{method}");
        assert_eq!(
            outcome.report.rounds().len(),
            sync.rounds().len(),
            "{method}: duplicated messages changed the round count"
        );
    }
}

#[test]
fn reordered_messages_still_converge_with_monotonic_bids() {
    use loadbal::core::concession::verify_bids;
    for seed in [5, 21, 33] {
        let scenario = ScenarioBuilder::random(35, 0.35, seed).build();
        let outcome = run_distributed(
            &scenario,
            NetworkModel::uniform(1, 10).with_reordering(0.4, 60),
            seed,
            SimDuration::from_ticks(300),
        );
        assert!(
            outcome.report.converged(),
            "seed {seed}: {}",
            outcome.report
        );
        // Reordering may cost rounds (late bids carry forward) but can
        // never break monotonic concession or worsen the peak.
        let bids: Vec<_> = outcome
            .report
            .rounds()
            .iter()
            .map(|r| r.bids.clone())
            .collect();
        assert!(verify_bids(&bids).is_ok(), "seed {seed}: bid retreat");
        assert!(outcome.report.final_overuse() <= outcome.report.initial_overuse());
    }
}

#[test]
fn chaos_network_loss_duplication_reordering_together() {
    let scenario = ScenarioBuilder::random(40, 0.35, 27).build();
    let outcome = run_distributed(
        &scenario,
        NetworkModel::uniform(1, 15)
            .with_drop_probability(0.2)
            .with_duplicate_probability(0.2)
            .with_reordering(0.3, 40),
        31,
        SimDuration::from_ticks(400),
    );
    assert!(outcome.report.converged(), "{}", outcome.report);
    assert!(outcome.metrics.messages_dropped > 0);
    assert!(outcome.metrics.messages_duplicated > 0);
    assert!(outcome.report.final_overuse() <= outcome.report.initial_overuse());
}

#[test]
fn negotiation_survives_a_total_outage_window() {
    // The backhaul is completely down for a window covering the first
    // announcement round; the UA's deadlines ride it out and the
    // negotiation still converges afterwards.
    let scenario = ScenarioBuilder::random(25, 0.35, 8).build();
    let outcome = run_distributed(
        &scenario,
        NetworkModel::uniform(1, 5).with_outage(0, 120),
        21,
        SimDuration::from_ticks(100),
    );
    assert!(outcome.report.converged(), "{}", outcome.report);
    assert!(outcome.metrics.messages_dropped > 0, "outage must bite");
    assert!(outcome.report.final_overuse() <= outcome.report.initial_overuse());
}

#[test]
fn short_deadline_still_terminates() {
    // A deadline shorter than the round trip: every round concludes with
    // carried-forward bids; the ε rule still terminates the protocol.
    let scenario = ScenarioBuilder::random(20, 0.35, 3).build();
    let outcome = run_distributed(
        &scenario,
        NetworkModel::uniform(5, 10),
        3,
        SimDuration::from_ticks(2),
    );
    assert!(outcome.report.converged(), "{}", outcome.report);
}

#[test]
fn crashed_customers_do_not_block_the_negotiation() {
    // A customer process that goes silent after its first bid (crash,
    // smart-meter failure, ...). The UA's deadline mechanism must carry
    // the negotiation to a proper termination regardless, keeping the
    // crashed customer's last bid (monotonic concession allows that).
    use loadbal::core::customer_agent::CustomerAgentState;
    use loadbal::core::distributed::UtilityProcess;
    use loadbal::massim::agent::{Agent, AgentId, Context};
    use loadbal::massim::runtime::Simulation;

    struct CrashingCustomer {
        state: CustomerAgentState,
        responses_left: u32,
    }

    impl Agent<Msg> for CrashingCustomer {
        fn on_message(&mut self, from: AgentId, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if let Msg::Announce { round, table } = msg {
                if self.responses_left == 0 {
                    return; // crashed: never answers again
                }
                self.responses_left -= 1;
                let cutdown = self.state.respond(&table);
                ctx.send(from, Msg::Bid { round, cutdown });
            }
        }
    }

    let scenario = ScenarioBuilder::random(30, 0.35, 6).build();
    let mut sim: Simulation<Msg> = Simulation::new(4);
    sim.set_logging(false);
    let ids: Vec<AgentId> = scenario
        .customers
        .iter()
        .enumerate()
        .map(|(i, c)| {
            sim.add_agent(CrashingCustomer {
                state: CustomerAgentState::new(c.preferences.clone()),
                // A third of the fleet crashes after round 1.
                responses_left: if i % 3 == 0 { 1 } else { u32::MAX },
            })
        })
        .collect();
    let ua = sim.add_agent(UtilityProcess::new(
        &scenario,
        ids,
        SimDuration::from_ticks(50),
    ));
    sim.run()
        .expect("negotiation with crashed customers terminates");
    let process = sim.agent::<UtilityProcess>(ua).expect("UA exists");
    let status = process.status().expect("negotiation concluded");
    assert!(status.is_converged(), "status: {status}");
    // Live customers still produced peak reduction.
    let rounds = process.rounds();
    let first = rounds.first().unwrap().predicted_total;
    let last = rounds.last().unwrap().predicted_total;
    assert!(last <= first, "peak must not grow: {first} → {last}");
}

#[test]
fn campaign_fault_matrix_every_class_terminates_and_reproduces() {
    // The season-scale fault matrix: a closed-loop winter campaign run
    // once per fault class. Every campaign must terminate with every
    // peak settled — converged within the protocol's own termination
    // rule, or concluded on the UA's deadline (which the traffic
    // counters then flag) — and the whole run, counters included, must
    // be exactly reproducible from its seed.
    use loadbal::core::campaign::{CampaignBuilder, ClosedLoop, FixedPredictor};
    use powergrid::calendar::Horizon;
    use powergrid::prediction::MovingAverage;

    let homes = PopulationBuilder::new().households(25).build(4);
    let weather = WeatherModel::winter();
    let horizon = Horizon::new(5, 0, Season::Winter);
    for class in FaultClass::all() {
        let run = || {
            CampaignBuilder::new(&homes, &weather, &horizon)
                .warmup_days(2)
                .predictor(FixedPredictor(MovingAverage::new(2)))
                .feedback(ClosedLoop)
                .report_tier(ReportTier::Settlement)
                .execution(class.mode(17))
                .build()
                .run_instrumented()
        };
        let (report, traffic) = run();
        assert!(report.negotiations() > 0, "{class}: no peaks negotiated");
        for outcome in &report.outcomes {
            // Termination is unconditional; under faults a negotiation
            // may conclude by ε-convergence or by exhausting its round
            // budget, but it always settles every customer.
            assert!(
                outcome.report.status().is_converged()
                    || outcome.report.status() == NegotiationStatus::MaxRoundsExceeded,
                "{class} {}: {}",
                outcome.label,
                outcome.report.status()
            );
            assert_eq!(
                outcome.report.settlements().len(),
                homes.len(),
                "{class} {}: every customer settles",
                outcome.label
            );
        }
        assert_eq!(traffic.negotiations as usize, report.negotiations());
        // Each class leaves exactly its own fingerprint on the wire.
        match class {
            FaultClass::Drop | FaultClass::Outage => {
                assert!(traffic.messages_dropped > 0, "{class}: fault must bite");
                assert_eq!(traffic.messages_duplicated, 0, "{class}");
            }
            FaultClass::Duplicate => {
                assert!(traffic.messages_duplicated > 0, "{class}: fault must bite");
                assert_eq!(traffic.messages_dropped, 0, "{class}");
            }
            FaultClass::Reorder => {
                assert_eq!(traffic.messages_dropped, 0, "{class}");
                assert_eq!(traffic.messages_duplicated, 0, "{class}");
            }
        }
        // Exact reproducibility: reports and counters, byte for byte.
        let (again, traffic_again) = run();
        assert_eq!(report, again, "{class}: report not reproducible");
        assert_eq!(traffic, traffic_again, "{class}: counters not reproducible");
    }
}

#[test]
fn equal_treatment_all_customers_see_identical_announcements() {
    // §6.1: "the Utility Agent communicates all Customer Agents the same
    // announcements, in compliance with Swedish law". Verify on the
    // delivered-message log.
    use loadbal::core::distributed::{CustomerProcess, UtilityProcess};
    use loadbal::core::engine::CustomerEngine;
    use loadbal::massim::runtime::Simulation;

    let scenario = ScenarioBuilder::random(10, 0.35, 2).build();
    let mut sim: Simulation<Msg> = Simulation::new(8);
    let ids: Vec<_> = (0..scenario.customers.len())
        .map(|i| {
            sim.add_agent(CustomerProcess::new(CustomerEngine::for_customer(
                &scenario, i,
            )))
        })
        .collect();
    let _ua = sim.add_agent(UtilityProcess::new(
        &scenario,
        ids.clone(),
        SimDuration::from_ticks(100),
    ));
    sim.run().unwrap();

    let log = sim.log().expect("logging enabled by default");
    // Group announcements by round; every customer must receive the same
    // table in every round.
    use std::collections::BTreeMap;
    let mut by_round: BTreeMap<u32, Vec<&loadbal::core::reward::RewardTable>> = BTreeMap::new();
    for (_, _, _, msg) in log.deliveries() {
        if let Msg::Announce { round, table } = msg {
            by_round.entry(*round).or_default().push(table);
        }
    }
    assert!(!by_round.is_empty());
    for (round, tables) in by_round {
        assert_eq!(tables.len(), ids.len(), "round {round} reached everyone");
        for t in &tables {
            assert_eq!(*t, tables[0], "round {round}: differing announcements");
        }
    }
}
