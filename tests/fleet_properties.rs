//! Property tests pinning the fleet-layer determinism claim: a
//! [`FleetRunner`] interleaving many campaigns' peak negotiations on
//! one shared worker pool is *byte-identical* to running every campaign
//! sequentially — for arbitrary cell counts, population mixes, policy
//! combinations and thread counts. Nondeterministic scheduling, fully
//! deterministic results.

use loadbal::core::campaign::{
    CampaignBuilder, CampaignRunner, ClosedLoop, FixedPredictor, MarginalCostStop,
};
use loadbal::core::fleet::FleetRunner;
use loadbal::prelude::*;
use powergrid::calendar::Horizon;
use powergrid::household::Household;
use powergrid::prediction::MovingAverage;
use proptest::prelude::*;
use std::num::NonZeroUsize;

fn build_cell<'a>(
    homes: &'a [Household],
    weather: &WeatherModel,
    closed: bool,
    stop: bool,
) -> CampaignRunner<'a> {
    let horizon = Horizon::new(5, 0, Season::Winter);
    let mut b = CampaignBuilder::new(homes, weather, &horizon)
        .warmup_days(2)
        .predictor(FixedPredictor(MovingAverage::new(2)));
    if closed {
        b = b.feedback(ClosedLoop);
    }
    if stop {
        b = b.stop_rule(MarginalCostStop);
    }
    b.build()
}

fn build_adaptive_cell<'a>(homes: &'a [Household], weather: &WeatherModel) -> CampaignRunner<'a> {
    let horizon = Horizon::new(6, 0, Season::Winter);
    CampaignBuilder::new(homes, weather, &horizon)
        .warmup_days(2)
        .predictor(RollingWindow::standard(3, 2))
        .feedback(RenegotiateResidual::new(2, 0.005))
        .tuning(AdaptiveTuning)
        .stop_rule(MarginalCostStop)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole claim: one shared pool over many campaigns returns
    /// exactly what back-to-back sequential runs do — per-cell reports,
    /// order, economics, every byte — for any cell mix and thread count.
    #[test]
    fn fleet_is_byte_identical_to_sequential(
        cells in prop::collection::vec(
            (15usize..45, 0u64..40, any::<bool>(), any::<bool>()),
            1..5,
        ),
        threads in 1usize..9,
    ) {
        let weather = WeatherModel::winter();
        let populations: Vec<Vec<Household>> = cells
            .iter()
            .map(|(n, seed, _, _)| PopulationBuilder::new().households(*n).build(*seed))
            .collect();
        let mut fleet = FleetRunner::new()
            .threads(NonZeroUsize::new(threads).expect("threads ≥ 1"));
        for (i, ((_, _, closed, stop), homes)) in cells.iter().zip(&populations).enumerate() {
            fleet = fleet.cell(format!("cell{i}"), build_cell(homes, &weather, *closed, *stop));
        }
        let interleaved = fleet.run();
        let sequential = fleet.run_sequential();
        prop_assert_eq!(&interleaved, &sequential);
        // Re-running is a pure replay.
        prop_assert_eq!(&interleaved, &fleet.run());
        // And every cell matches its standalone campaign, so the fleet
        // layer adds scheduling, never semantics.
        for (cell, (label, runner)) in interleaved.cells.iter().zip(fleet.cells()) {
            prop_assert_eq!(&cell.label, label);
            prop_assert_eq!(&cell.report, &runner.run_sequential());
        }
    }

    /// One `FleetRunner` reused across two consecutive `run` calls —
    /// same (persistent, already-spawned) pool, a *different* cell mix
    /// the second time — stays byte-identical to fresh sequential runs:
    /// neither the parked workers nor their per-worker negotiation
    /// scratches leak any state from the first season into the second.
    #[test]
    fn fleet_reused_across_runs_stays_byte_identical(
        first in prop::collection::vec((15usize..40, 0u64..30, any::<bool>()), 1..3),
        extra in prop::collection::vec((15usize..40, 30u64..60, any::<bool>()), 1..3),
        threads in 2usize..7,
    ) {
        let weather = WeatherModel::winter();
        let populations: Vec<Vec<Household>> = first
            .iter()
            .chain(&extra)
            .map(|(n, seed, _)| PopulationBuilder::new().households(*n).build(*seed))
            .collect();
        let mut fleet = FleetRunner::new()
            .threads(NonZeroUsize::new(threads).expect("threads ≥ 1"));
        for (i, ((_, _, closed), homes)) in first.iter().zip(&populations).enumerate() {
            fleet = fleet.cell(format!("cell{i}"), build_cell(homes, &weather, *closed, false));
        }
        // First run spawns the pool's parked workers.
        let run1 = fleet.run();
        prop_assert_eq!(&run1, &fleet.run_sequential());
        // Grow the mix: the same runner (and the same pool) negotiates
        // a different fleet on its second run.
        for (j, ((_, _, closed), homes)) in
            extra.iter().zip(&populations[first.len()..]).enumerate()
        {
            fleet = fleet.cell(format!("extra{j}"), build_cell(homes, &weather, *closed, true));
        }
        let run2 = fleet.run();
        prop_assert_eq!(&run2, &fleet.run_sequential());
        // The original cells' reports are bit-for-bit unaffected by the
        // pool reuse and the new neighbours.
        for (a, b) in run1.cells.iter().zip(&run2.cells) {
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(run2.len(), first.len() + extra.len());
    }

    /// Thread count is an execution detail: the same fleet fanned over
    /// 1, 2, 4 and 7 workers always agrees with the single-thread run.
    #[test]
    fn fleet_thread_count_never_changes_outcomes(
        n in 15usize..40,
        seeds in 1u64..5,
    ) {
        let weather = WeatherModel::winter();
        let populations: Vec<Vec<Household>> = (0..seeds)
            .map(|s| PopulationBuilder::new().households(n).build(s))
            .collect();
        let build_fleet = |threads: usize| {
            let mut fleet = FleetRunner::new()
                .threads(NonZeroUsize::new(threads).expect("threads ≥ 1"));
            for (i, homes) in populations.iter().enumerate() {
                // Mixed policies: odd cells closed-loop so later days
                // depend on earlier negotiations inside each cell.
                fleet = fleet.cell(
                    format!("cell{i}"),
                    build_cell(homes, &weather, i % 2 == 1, false),
                );
            }
            fleet
        };
        let reference = build_fleet(1).run();
        for threads in [2usize, 4, 7] {
            prop_assert_eq!(&build_fleet(threads).run(), &reference, "threads = {}", threads);
        }
    }

    /// Adaptive cells keep the fleet guarantee: campaigns running all
    /// three self-tuning loops (rolling predictor re-selection,
    /// same-day renegotiation, experience-tuned β), interleaved with
    /// plain cells on one shared pool, are byte-identical to their
    /// standalone sequential runs — each cell's tuned state is its own.
    #[test]
    fn fleet_with_adaptive_cells_is_byte_identical_to_sequential(
        cells in prop::collection::vec((15usize..40, 0u64..40, any::<bool>()), 1..4),
        threads in 1usize..7,
    ) {
        let weather = WeatherModel::winter();
        let populations: Vec<Vec<Household>> = cells
            .iter()
            .map(|(n, seed, _)| PopulationBuilder::new().households(*n).build(*seed))
            .collect();
        let mut fleet = FleetRunner::new()
            .threads(NonZeroUsize::new(threads).expect("threads ≥ 1"));
        for (i, ((_, _, adaptive), homes)) in cells.iter().zip(&populations).enumerate() {
            let cell = if *adaptive {
                build_adaptive_cell(homes, &weather)
            } else {
                build_cell(homes, &weather, true, false)
            };
            fleet = fleet.cell(format!("cell{i}"), cell);
        }
        let interleaved = fleet.run();
        prop_assert_eq!(&interleaved, &fleet.run_sequential());
        for (cell, (label, runner)) in interleaved.cells.iter().zip(fleet.cells()) {
            prop_assert_eq!(&cell.label, label);
            prop_assert_eq!(&cell.report, &runner.run_sequential());
        }
    }
}
