//! Cross-crate integration: the full pipeline from physical households
//! through prediction and peak detection to a settled negotiation.

use loadbal::core::outcome::SettlementSummary;
use loadbal::core::producer_agent::ProducerAgent;
use loadbal::core::utility_agent::agent_specific::{evaluate_prediction, predict_balance};
use loadbal::prelude::*;
use powergrid::peak::PeakDetector;
use powergrid::prediction::{LoadPredictor, MovingAverage, WeatherRegression};

fn history_for(homes: &[Household], axis: &TimeAxis, days: u64) -> Vec<Series> {
    let model = WeatherModel::winter();
    (0..days)
        .map(|day| {
            let weather = model.temperatures(axis, day);
            aggregate_demand(homes, &weather, axis, day)
                .series()
                .clone()
        })
        .collect()
}

#[test]
fn grid_to_negotiation_pipeline_shaves_the_peak() {
    let axis = TimeAxis::quarter_hourly();
    let homes = PopulationBuilder::new().households(200).build(11);
    let history = history_for(&homes, &axis, 5);
    let forecast = WeatherModel::winter()
        .with_anomaly(-4.0)
        .temperatures(&axis, 6);

    // UA agent-specific tasks: predict, then evaluate.
    let predicted = predict_balance(&WeatherRegression::calibrated(), &history, &forecast);
    let capacity = Kilowatts(predicted.max() / axis.slot_hours() * 0.85);
    let production = ProductionModel::two_tier(capacity, Kilowatts(capacity.value() * 3.0));
    let assessment = evaluate_prediction(&predicted, &production, &PeakDetector::new(0.02));
    let peak = *assessment.peak().expect("cold snap must produce a peak");
    assert!(peak.overuse_fraction() > 0.0);

    // Build and run the negotiation over the detected interval.
    let scenario = ScenarioBuilder::from_households(
        &homes,
        &axis,
        forecast.mean(),
        peak.interval,
        1.0 / (1.0 + peak.overuse_fraction()),
        11,
    )
    .build();
    let report = scenario.run();
    assert!(report.converged(), "{report}");
    assert!(
        report.final_overuse_fraction() < report.initial_overuse_fraction(),
        "negotiation must shave the peak: {report}"
    );

    // Settle: customers must not lose (their thresholds are honoured).
    let producer = ProducerAgent::new(production);
    let summary =
        SettlementSummary::compute(&scenario, &report, &producer, peak.interval.hours(axis));
    assert!(summary.customer_surplus.value() >= 0.0);
    assert!(summary.participants > 0);
}

#[test]
fn predictors_agree_on_stable_history() {
    let axis = TimeAxis::hourly();
    let homes = PopulationBuilder::new().households(50).build(5);
    let history = history_for(&homes, &axis, 4);
    let weather = WeatherModel::winter().temperatures(&axis, 9);
    let ma = MovingAverage::new(3).predict(&history, &weather);
    let wr = WeatherRegression::calibrated().predict(&history, &weather);
    // Same order of magnitude: the weather factor is a modest scaling.
    let ratio = wr.sum() / ma.sum();
    assert!(
        (0.7..1.4).contains(&ratio),
        "predictors diverge: ratio {ratio}"
    );
}

#[test]
fn stable_grid_never_triggers_negotiation() {
    let axis = TimeAxis::hourly();
    let homes = PopulationBuilder::new().households(50).build(3);
    let history = history_for(&homes, &axis, 3);
    let forecast = WeatherModel::winter().temperatures(&axis, 4);
    let predicted = predict_balance(&MovingAverage::new(3), &history, &forecast);
    // Ample capacity: double the observed peak.
    let capacity = Kilowatts(predicted.max() / axis.slot_hours() * 2.0);
    let production = ProductionModel::two_tier(capacity, Kilowatts(capacity.value() * 2.0));
    let assessment = evaluate_prediction(&predicted, &production, &PeakDetector::default());
    assert!(
        assessment.peak().is_none(),
        "no peak expected with double capacity"
    );
}

#[test]
fn all_methods_work_on_household_derived_scenarios() {
    let axis = TimeAxis::quarter_hourly();
    let homes = PopulationBuilder::new().households(80).build(21);
    let weather = WeatherModel::winter().temperatures(&axis, 21);
    let curve = aggregate_demand(&homes, &weather, &axis, 21);
    let interval = curve.peak_interval(8);
    let scenario =
        ScenarioBuilder::from_households(&homes, &axis, weather.mean(), interval, 0.8, 21).build();
    for method in AnnouncementMethod::all() {
        let report = scenario.run_with(method);
        assert!(report.converged(), "{method}: {report}");
        assert!(
            report.final_overuse() <= report.initial_overuse(),
            "{method} must not worsen the peak"
        );
    }
}
