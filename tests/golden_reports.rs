//! Golden-report regression corpus: the *full* [`NegotiationReport`]
//! (every round, table, bid, settlement and total) of a fixed set of
//! scenario × method pairs is snapshotted under `tests/golden/`. Any
//! protocol drift — a changed reward update, a different round count, a
//! reordered settlement — fails loudly with a diff-friendly rendering.
//!
//! To re-bless after an *intentional* protocol change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --test golden_reports
//! ```
//!
//! then commit the rewritten `tests/golden/*.golden` files alongside the
//! change that motivated them.

use loadbal::core::campaign::{
    CampaignBuilder, CampaignReport, ClosedLoop, FixedPredictor, MarginalCostStop,
};
use loadbal::core::session::{NegotiationReport, ReportTier, Scenario};
use loadbal::prelude::*;
use powergrid::calendar::Horizon;
use powergrid::prediction::MovingAverage;
use std::fmt::Write as _;
use std::path::PathBuf;

/// A stable, diff-friendly rendering of everything a report contains.
fn render(report: &NegotiationReport) -> String {
    let mut out = String::new();
    writeln!(out, "method: {}", report.method()).unwrap();
    writeln!(out, "normal_use: {:.6}", report.normal_use().value()).unwrap();
    writeln!(out, "initial_total: {:.6}", report.initial_total().value()).unwrap();
    writeln!(out, "status: {}", report.status()).unwrap();
    writeln!(out, "rounds: {}", report.rounds().len()).unwrap();
    for r in report.rounds() {
        writeln!(
            out,
            "round {}: messages={} predicted_total={:.6}",
            r.round,
            r.messages,
            r.predicted_total.value()
        )
        .unwrap();
        match &r.table {
            Some(table) => {
                let entries: Vec<String> = table
                    .entries()
                    .iter()
                    .map(|(c, m)| format!("{:.2}->{:.6}", c.value(), m.value()))
                    .collect();
                writeln!(out, "  table [{}]: {}", table.interval(), entries.join(" ")).unwrap();
            }
            None => writeln!(out, "  table: none").unwrap(),
        }
        let bids: Vec<String> = r.bids.iter().map(|b| format!("{:.2}", b.value())).collect();
        writeln!(out, "  bids: {}", bids.join(" ")).unwrap();
    }
    for (i, s) in report.settlements().iter().enumerate() {
        writeln!(
            out,
            "settlement {i}: cutdown={:.2} reward={:.6}",
            s.cutdown.value(),
            s.reward.value()
        )
        .unwrap();
    }
    writeln!(out, "total_messages: {}", report.total_messages()).unwrap();
    writeln!(out, "total_rewards: {:.6}", report.total_rewards().value()).unwrap();
    writeln!(out, "energy_shaved: {:.6}", report.energy_shaved().value()).unwrap();
    out
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Compares (or, under `GOLDEN_BLESS=1`, rewrites) one rendered snapshot.
fn check_rendered(name: &str, rendered: &str) {
    let path = golden_dir().join(format!("{name}.golden"));
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, rendered).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {path:?} ({e}); \
             run `GOLDEN_BLESS=1 cargo test --test golden_reports` to create it"
        )
    });
    assert_eq!(
        expected, rendered,
        "\ndrift detected for '{name}'.\n\
         If this change is intentional, re-bless with\n\
         `GOLDEN_BLESS=1 cargo test --test golden_reports`\n\
         and commit the updated tests/golden/{name}.golden"
    );
}

/// Snapshot-checks one negotiation report.
fn check(name: &str, report: &NegotiationReport) {
    check_rendered(name, &render(report));
}

/// The fixed corpus: the calibrated paper scenario, a seeded random
/// population, and a grid-pipeline scenario — each under all three §3.2
/// announcement methods.
fn corpus() -> Vec<(String, Scenario)> {
    let mut scenarios = vec![
        (
            "fig6".to_string(),
            ScenarioBuilder::paper_figure_6().build(),
        ),
        (
            "random30-s7".to_string(),
            ScenarioBuilder::random(30, 0.35, 7).build(),
        ),
    ];
    // One scenario straight out of the powergrid pipeline: the first
    // peak a small winter campaign detects.
    let homes = PopulationBuilder::new().households(40).build(11);
    // Three days = two warmup + one evaluated: the runner negotiates
    // only the day whose first peak the corpus wants, and that peak's
    // scenario is independent of any longer horizon (open loop).
    let report = CampaignBuilder::new(
        &homes,
        &WeatherModel::winter(),
        &Horizon::new(3, 0, Season::Winter),
    )
    .warmup_days(2)
    .predictor(FixedPredictor(MovingAverage::new(2)))
    .build()
    .run_sequential();
    let first_peak = report
        .outcomes
        .first()
        .expect("winter campaign detects at least one peak")
        .scenario
        .clone()
        .expect("full-trace campaigns retain scenarios");
    scenarios.push(("grid-peak".to_string(), first_peak));
    scenarios
}

#[test]
fn reports_match_golden_corpus() {
    for (name, scenario) in corpus() {
        for method in AnnouncementMethod::all() {
            let report = scenario.run_with(method);
            check(&format!("{name}__{method}"), &report);
        }
    }
}

/// A stable, diff-friendly rendering of a whole campaign: per-day
/// predictor choice, peaks and feedback deltas, per-peak negotiation
/// summaries, and the stop-rule accounting.
fn render_campaign(report: &CampaignReport) -> String {
    let mut out = String::new();
    writeln!(out, "days_evaluated: {}", report.days_evaluated()).unwrap();
    for d in &report.days {
        writeln!(
            out,
            "day {} ({}): predictor={} peaks={} feedback_delta={:.6}",
            d.day.index,
            d.day.day_type,
            d.predictor,
            d.peaks.len(),
            d.feedback_delta.value()
        )
        .unwrap();
    }
    for o in &report.outcomes {
        writeln!(
            out,
            "outcome {}: rounds={} initial_total={:.6} final_total={:.6} rewards={:.6} status={}",
            o.label,
            o.report.rounds().len(),
            o.report.initial_total().value(),
            o.report.final_total().value(),
            o.report.total_rewards().value(),
            o.report.status()
        )
        .unwrap();
    }
    let e = &report.economics;
    writeln!(out, "rewards_paid: {:.6}", e.rewards_paid.value()).unwrap();
    writeln!(out, "energy_shaved: {:.6}", e.energy_shaved.value()).unwrap();
    writeln!(
        out,
        "production_cost_avoided: {:.6}",
        e.production_cost_avoided.value()
    )
    .unwrap();
    writeln!(out, "peak_saving: {:.6}", e.peak_saving.value()).unwrap();
    writeln!(out, "net_gain: {:.6}", e.net_gain.value()).unwrap();
    writeln!(out, "economic_stops: {}", e.economic_stops).unwrap();
    out
}

/// Snapshot-checks one campaign report.
fn check_campaign(name: &str, report: &CampaignReport) {
    check_rendered(name, &render_campaign(report));
}

/// The tier-golden rendering: everything [`render_campaign`] shows plus
/// what distinguishes the tiers — the stored tier and the retained
/// settlements — so the `aggregate` and `settlement` snapshots differ
/// where (and only where) the tiers do.
fn render_campaign_at_tier(report: &CampaignReport) -> String {
    let mut out = render_campaign(report);
    for o in &report.outcomes {
        writeln!(out, "outcome {}: tier={}", o.label, o.report.tier()).unwrap();
        for (i, s) in o.report.settlements().iter().enumerate() {
            writeln!(
                out,
                "  settlement {i}: cutdown={:.2} reward={:.6}",
                s.cutdown.value(),
                s.reward.value()
            )
            .unwrap();
        }
    }
    out
}

/// The closed-loop fixture shared by the full-trace golden and the
/// per-tier goldens, run at `tier` (parallel).
fn closed_loop_fixture(tier: ReportTier, sequential: bool) -> CampaignReport {
    let homes = PopulationBuilder::new().households(40).build(11);
    let campaign = CampaignBuilder::new(
        &homes,
        &WeatherModel::winter(),
        &Horizon::new(6, 0, Season::Winter),
    )
    .predictor(FixedPredictor(MovingAverage::new(3)))
    .feedback(ClosedLoop)
    .stop_rule(MarginalCostStop)
    .report_tier(tier)
    .build();
    if sequential {
        campaign.run_sequential()
    } else {
        campaign.run()
    }
}

#[test]
fn closed_loop_campaign_matches_golden() {
    // One closed-loop campaign under the marginal-cost stop: pins the
    // whole feedback cycle — predictor choice, per-day feedback deltas,
    // per-peak settlements and the stop-rule accounting.
    let report = closed_loop_fixture(ReportTier::FullTrace, false);
    // The snapshot is only meaningful if the run is pure.
    assert_eq!(report, closed_loop_fixture(ReportTier::FullTrace, true));
    check_campaign("campaign-closed-loop", &report);
}

#[test]
fn tiered_campaigns_match_goldens_and_downgrades() {
    // The same fixture at the two lower tiers: pins what each tier
    // keeps (settlements but no rounds at Settlement; scalars only at
    // Aggregate) and that streaming at a tier equals downgrading a
    // full-trace run after the fact.
    let full = closed_loop_fixture(ReportTier::FullTrace, false);
    for tier in [ReportTier::Aggregate, ReportTier::Settlement] {
        let streamed = closed_loop_fixture(tier, false);
        assert_eq!(
            streamed,
            full.at_tier(tier),
            "streaming at {tier} diverged from at_tier({tier}) downgrade"
        );
        assert_eq!(streamed, closed_loop_fixture(tier, true));
        for outcome in &streamed.outcomes {
            assert_eq!(outcome.report.tier(), tier);
            assert!(outcome.report.rounds().is_empty(), "{tier} kept rounds");
            assert_eq!(outcome.scenario.is_some(), tier.keeps_rounds());
            assert_eq!(
                !outcome.report.settlements().is_empty(),
                tier.keeps_settlements(),
                "{tier} settlements retention wrong"
            );
        }
        check_rendered(
            &format!("campaign-closed-loop__{tier}"),
            &render_campaign_at_tier(&streamed),
        );
    }
}

/// The adaptive fixture: the closed-loop campaign's grid with all
/// three self-tuning loops closed — rolling predictor re-selection,
/// same-day residual renegotiation and experience-tuned β/band.
fn adaptive_fixture(sequential: bool) -> CampaignReport {
    let homes = PopulationBuilder::new().households(40).build(11);
    let campaign = CampaignBuilder::new(
        &homes,
        &WeatherModel::winter(),
        &Horizon::new(6, 0, Season::Winter),
    )
    .predictor(RollingWindow::standard(3, 2))
    .feedback(RenegotiateResidual::new(2, 0.005))
    .tuning(AdaptiveTuning)
    .stop_rule(MarginalCostStop)
    .build();
    if sequential {
        campaign.run_sequential()
    } else {
        campaign.run()
    }
}

#[test]
fn adaptive_campaign_matches_golden() {
    // The full adaptive stack on the closed-loop grid: pins the tuned
    // configs' effect on every settlement, the renegotiation pass
    // labels and the re-selected predictor trail, so any drift in the
    // three day-boundary loops fails loudly.
    let report = adaptive_fixture(false);
    assert_eq!(report, adaptive_fixture(true), "adaptive run not pure");
    check_campaign("campaign-adaptive", &report);
}

/// The distributed-faulty fixture: the closed-loop campaign's grid and
/// policies, but with every peak negotiated as a seeded simulation over
/// the drop-class faulty network. Settlement tier — the tier a faulty
/// season study would actually run at.
fn distributed_faulty_fixture(sequential: bool) -> (CampaignReport, NetworkTraffic) {
    let homes = PopulationBuilder::new().households(40).build(11);
    let campaign = CampaignBuilder::new(
        &homes,
        &WeatherModel::winter(),
        &Horizon::new(6, 0, Season::Winter),
    )
    .predictor(FixedPredictor(MovingAverage::new(3)))
    .feedback(ClosedLoop)
    .stop_rule(MarginalCostStop)
    .report_tier(ReportTier::Settlement)
    .execution(FaultClass::Drop.mode(23))
    .build();
    if sequential {
        campaign.run_sequential_instrumented()
    } else {
        campaign.run_instrumented()
    }
}

#[test]
fn distributed_faulty_campaign_matches_golden() {
    // A faulty distributed season is still a pure function of its seed:
    // lost messages, deadline-forced rounds and all. The snapshot pins
    // the degraded settlements *and* the wire counters, so any drift in
    // the network model, the per-peak seeding or the deadline handling
    // fails loudly.
    let (report, traffic) = distributed_faulty_fixture(false);
    let (seq_report, seq_traffic) = distributed_faulty_fixture(true);
    assert_eq!(report, seq_report, "parallel faulty run diverged");
    assert_eq!(traffic, seq_traffic, "traffic counters diverged");
    assert!(traffic.messages_dropped > 0, "the drop fault must bite");
    let mut rendered = render_campaign_at_tier(&report);
    writeln!(rendered, "traffic: {traffic}").unwrap();
    check_rendered("campaign-distributed-faulty", &rendered);
}

#[test]
fn golden_corpus_is_replayable() {
    // The corpus relies on runs being pure; pin that here so a golden
    // failure always means protocol drift, never nondeterminism.
    for (name, scenario) in corpus() {
        let a = scenario.run();
        let b = scenario.run();
        assert_eq!(a, b, "{name}: re-run diverged");
        assert_eq!(render(&a), render(&b), "{name}: rendering diverged");
    }
}
