//! Golden-report regression corpus: the *full* [`NegotiationReport`]
//! (every round, table, bid, settlement and total) of a fixed set of
//! scenario × method pairs is snapshotted under `tests/golden/`. Any
//! protocol drift — a changed reward update, a different round count, a
//! reordered settlement — fails loudly with a diff-friendly rendering.
//!
//! To re-bless after an *intentional* protocol change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --test golden_reports
//! ```
//!
//! then commit the rewritten `tests/golden/*.golden` files alongside the
//! change that motivated them.

use loadbal::core::campaign::{CampaignConfig, CampaignPlan};
use loadbal::core::session::{NegotiationReport, Scenario};
use loadbal::prelude::*;
use powergrid::calendar::Horizon;
use powergrid::prediction::MovingAverage;
use std::fmt::Write as _;
use std::path::PathBuf;

/// A stable, diff-friendly rendering of everything a report contains.
fn render(report: &NegotiationReport) -> String {
    let mut out = String::new();
    writeln!(out, "method: {}", report.method()).unwrap();
    writeln!(out, "normal_use: {:.6}", report.normal_use().value()).unwrap();
    writeln!(out, "initial_total: {:.6}", report.initial_total().value()).unwrap();
    writeln!(out, "status: {}", report.status()).unwrap();
    writeln!(out, "rounds: {}", report.rounds().len()).unwrap();
    for r in report.rounds() {
        writeln!(
            out,
            "round {}: messages={} predicted_total={:.6}",
            r.round,
            r.messages,
            r.predicted_total.value()
        )
        .unwrap();
        match &r.table {
            Some(table) => {
                let entries: Vec<String> = table
                    .entries()
                    .iter()
                    .map(|(c, m)| format!("{:.2}->{:.6}", c.value(), m.value()))
                    .collect();
                writeln!(out, "  table [{}]: {}", table.interval(), entries.join(" ")).unwrap();
            }
            None => writeln!(out, "  table: none").unwrap(),
        }
        let bids: Vec<String> = r.bids.iter().map(|b| format!("{:.2}", b.value())).collect();
        writeln!(out, "  bids: {}", bids.join(" ")).unwrap();
    }
    for (i, s) in report.settlements().iter().enumerate() {
        writeln!(
            out,
            "settlement {i}: cutdown={:.2} reward={:.6}",
            s.cutdown.value(),
            s.reward.value()
        )
        .unwrap();
    }
    writeln!(out, "total_messages: {}", report.total_messages()).unwrap();
    writeln!(out, "total_rewards: {:.6}", report.total_rewards().value()).unwrap();
    writeln!(out, "energy_shaved: {:.6}", report.energy_shaved().value()).unwrap();
    out
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Compares (or, under `GOLDEN_BLESS=1`, rewrites) one snapshot.
fn check(name: &str, report: &NegotiationReport) {
    let rendered = render(report);
    let path = golden_dir().join(format!("{name}.golden"));
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {path:?} ({e}); \
             run `GOLDEN_BLESS=1 cargo test --test golden_reports` to create it"
        )
    });
    assert_eq!(
        expected, rendered,
        "\nprotocol drift detected for '{name}'.\n\
         If this change is intentional, re-bless with\n\
         `GOLDEN_BLESS=1 cargo test --test golden_reports`\n\
         and commit the updated tests/golden/{name}.golden"
    );
}

/// The fixed corpus: the calibrated paper scenario, a seeded random
/// population, and a grid-pipeline scenario — each under all three §3.2
/// announcement methods.
fn corpus() -> Vec<(String, Scenario)> {
    let mut scenarios = vec![
        (
            "fig6".to_string(),
            ScenarioBuilder::paper_figure_6().build(),
        ),
        (
            "random30-s7".to_string(),
            ScenarioBuilder::random(30, 0.35, 7).build(),
        ),
    ];
    // One scenario straight out of the powergrid pipeline: the first
    // peak a small winter campaign detects.
    let homes = PopulationBuilder::new().households(40).build(11);
    let plan = CampaignPlan::build(
        &homes,
        &WeatherModel::winter(),
        &Horizon::new(5, 0, Season::Winter),
        &MovingAverage::new(2),
        CampaignConfig {
            warmup_days: 2,
            ..CampaignConfig::default()
        },
    );
    let first_peak = plan
        .sweep()
        .points()
        .first()
        .expect("winter campaign detects at least one peak")
        .scenario
        .clone();
    scenarios.push(("grid-peak".to_string(), first_peak));
    scenarios
}

#[test]
fn reports_match_golden_corpus() {
    for (name, scenario) in corpus() {
        for method in AnnouncementMethod::all() {
            let report = scenario.run_with(method);
            check(&format!("{name}__{method}"), &report);
        }
    }
}

#[test]
fn golden_corpus_is_replayable() {
    // The corpus relies on runs being pure; pin that here so a golden
    // failure always means protocol drift, never nondeterminism.
    for (name, scenario) in corpus() {
        let a = scenario.run();
        let b = scenario.run();
        assert_eq!(a, b, "{name}: re-run diverged");
        assert_eq!(render(&a), render(&b), "{name}: rendering diverged");
    }
}
