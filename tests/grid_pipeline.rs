//! Acceptance test for the grid→negotiation pipeline: a realistic
//! `PopulationBuilder` population (≥ 200 households) runs a winter
//! day-campaign — every peak the predictor/detector finds is negotiated
//! through the sans-io engine, every negotiation converges, energy is
//! actually shaved, and the whole thing is byte-deterministic across
//! sequential and `ScenarioSweep`-parallel execution.

use loadbal::core::campaign::{CampaignConfig, CampaignPlan};
use loadbal::prelude::*;
use powergrid::calendar::Horizon;
use powergrid::prediction::WeatherRegression;
use std::num::NonZeroUsize;

fn winter_campaign(households: usize) -> CampaignPlan {
    let homes = PopulationBuilder::new().households(households).build(42);
    CampaignPlan::build(
        &homes,
        &WeatherModel::winter(),
        &Horizon::new(8, 0, Season::Winter),
        &WeatherRegression::calibrated(),
        CampaignConfig::default(),
    )
}

#[test]
fn day_campaign_over_200_households_negotiates_every_peak() {
    let plan = winter_campaign(220);

    // Every detected peak is scheduled for negotiation, none skipped.
    let detected: usize = plan.days().iter().map(|d| d.peaks.len()).sum();
    assert!(detected > 0, "a winter week must carry negotiable peaks");
    assert_eq!(plan.len(), detected);

    let report = plan.run();
    assert_eq!(
        report.negotiations(),
        detected,
        "every detected peak interval is negotiated"
    );

    // Every negotiation converges by protocol rules.
    assert!(report.all_converged(), "{report}");
    for outcome in &report.outcomes {
        assert!(
            outcome.report.converged(),
            "{}: {}",
            outcome.label,
            outcome.report
        );
        // The negotiated interval is exactly the detected peak interval.
        assert_eq!(outcome.peak.interval, {
            let r = &outcome.report;
            // Reward tables carry the interval in every announced table.
            r.rounds()[0]
                .table
                .as_ref()
                .expect("reward-table campaign")
                .interval()
        });
    }

    // The campaign reports real, positive energy savings.
    let shaved = report.total_energy_shaved();
    assert!(
        shaved.value() > 0.0,
        "campaign shaved {shaved} across {} peaks",
        report.negotiations()
    );
    // Per-outcome shavings sum to the total.
    let sum: KilowattHours = report.outcomes.iter().map(|o| o.energy_shaved()).sum();
    assert!((sum - shaved).value().abs() < 1e-9);
}

#[test]
fn campaign_is_byte_deterministic_across_execution_modes() {
    let plan = winter_campaign(200);
    let parallel = plan.run();
    let sequential = plan.run_sequential();
    assert_eq!(
        parallel, sequential,
        "parallel campaign must be byte-identical to sequential"
    );

    // Rebuilding the whole pipeline from the same seed replays exactly,
    // and an explicit worker cap changes nothing.
    let rebuilt = winter_campaign(200);
    assert_eq!(rebuilt.run(), parallel);
    let capped_config = CampaignConfig {
        threads: NonZeroUsize::new(2),
        ..CampaignConfig::default()
    };
    let homes = PopulationBuilder::new().households(200).build(42);
    let capped = CampaignPlan::build(
        &homes,
        &WeatherModel::winter(),
        &Horizon::new(8, 0, Season::Winter),
        &WeatherRegression::calibrated(),
        capped_config,
    );
    assert_eq!(capped.run(), parallel);
}

#[test]
fn pipeline_profiles_come_from_the_physical_model() {
    let plan = winter_campaign(200);
    let homes = PopulationBuilder::new().households(200).build(42);
    let point = &plan.sweep().points()[0];
    let scenario = &point.scenario;
    assert_eq!(scenario.customers.len(), homes.len());
    // No customer can be asked for more than its physical ceiling, and
    // predicted use over the peak is strictly positive for every home.
    for c in &scenario.customers {
        assert!(c.predicted_use.value() > 0.0);
        assert!(c.allowed_use >= c.predicted_use);
        assert!(c.preferences.max_cutdown() <= Fraction::ONE);
    }
    // Settled cut-downs respect the physical ceilings.
    let report = scenario.run();
    for (s, c) in report.settlements().iter().zip(&scenario.customers) {
        assert!(
            s.cutdown <= c.preferences.max_cutdown(),
            "settled beyond physical saving potential"
        );
    }
}
