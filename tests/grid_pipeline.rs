//! Acceptance tests for the grid→negotiation pipeline: a realistic
//! `PopulationBuilder` population (≥ 200 households) runs a winter
//! campaign — every peak the predictor/detector finds is negotiated
//! through the sans-io engine, every negotiation converges, energy is
//! actually shaved, and the whole thing is byte-deterministic across
//! sequential and `ScenarioSweep`-parallel execution. The closed-loop
//! and marginal-cost-stop policies are pinned here too: negotiated
//! cut-downs change the consumption the next prediction is trained on,
//! and the stop rule buys convergence for strictly less reward outlay.

use loadbal::core::campaign::{
    CampaignBuilder, CampaignRunner, ClosedLoop, FixedPredictor, MarginalCostStop,
};
use loadbal::prelude::*;
use powergrid::calendar::Horizon;
use powergrid::household::Household;
use powergrid::prediction::WeatherRegression;
use std::num::NonZeroUsize;

fn homes(n: usize) -> Vec<Household> {
    PopulationBuilder::new().households(n).build(42)
}

fn winter_runner(homes: &[Household]) -> CampaignRunner<'_> {
    CampaignBuilder::new(
        homes,
        &WeatherModel::winter(),
        &Horizon::new(8, 0, Season::Winter),
    )
    .predictor(FixedPredictor(WeatherRegression::calibrated()))
    .build()
}

#[test]
fn day_campaign_over_200_households_negotiates_every_peak() {
    let homes = homes(220);
    let report = winter_runner(&homes).run();

    // Every detected peak is scheduled for negotiation, none skipped.
    let detected: usize = report.days.iter().map(|d| d.peaks.len()).sum();
    assert!(detected > 0, "a winter week must carry negotiable peaks");
    assert_eq!(
        report.negotiations(),
        detected,
        "every detected peak interval is negotiated"
    );

    // Every negotiation converges by protocol rules.
    assert!(report.all_converged(), "{report}");
    for outcome in &report.outcomes {
        assert!(
            outcome.report.converged(),
            "{}: {}",
            outcome.label,
            outcome.report
        );
        // The negotiated interval is exactly the detected peak interval.
        assert_eq!(outcome.peak.interval, {
            let r = &outcome.report;
            // Reward tables carry the interval in every announced table.
            r.rounds()[0]
                .table
                .as_ref()
                .expect("reward-table campaign")
                .interval()
        });
    }

    // The campaign reports real, positive energy savings.
    let shaved = report.total_energy_shaved();
    assert!(
        shaved.value() > 0.0,
        "campaign shaved {shaved} across {} peaks",
        report.negotiations()
    );
    // Per-outcome shavings sum to the total.
    let sum: KilowattHours = report.outcomes.iter().map(|o| o.energy_shaved()).sum();
    assert!((sum - shaved).value().abs() < 1e-9);
}

#[test]
fn campaign_is_byte_deterministic_across_execution_modes() {
    let homes = homes(200);
    let runner = winter_runner(&homes);
    let parallel = runner.run();
    let sequential = runner.run_sequential();
    assert_eq!(
        parallel, sequential,
        "parallel campaign must be byte-identical to sequential"
    );

    // Rebuilding the whole pipeline from the same seed replays exactly,
    // and an explicit worker cap changes nothing.
    assert_eq!(winter_runner(&homes).run(), parallel);
    let capped = CampaignBuilder::new(
        &homes,
        &WeatherModel::winter(),
        &Horizon::new(8, 0, Season::Winter),
    )
    .predictor(FixedPredictor(WeatherRegression::calibrated()))
    .threads(NonZeroUsize::new(2).expect("2 > 0"))
    .build();
    assert_eq!(capped.run(), parallel);
}

#[test]
fn pipeline_profiles_come_from_the_physical_model() {
    let homes = homes(200);
    let report = winter_runner(&homes).run();
    let scenario = report.outcomes[0]
        .scenario
        .as_ref()
        .expect("full-trace campaigns retain scenarios");
    assert_eq!(scenario.customers.len(), homes.len());
    // No customer can be asked for more than its physical ceiling, and
    // predicted use over the peak is strictly positive for every home.
    for c in &scenario.customers {
        assert!(c.predicted_use.value() > 0.0);
        assert!(c.allowed_use >= c.predicted_use);
        assert!(c.preferences.max_cutdown() <= Fraction::ONE);
    }
    // Settled cut-downs respect the physical ceilings.
    let settled = &report.outcomes[0].report;
    for (s, c) in settled.settlements().iter().zip(&scenario.customers) {
        assert!(
            s.cutdown <= c.preferences.max_cutdown(),
            "settled beyond physical saving potential"
        );
    }
}

#[test]
fn closed_loop_feeds_negotiated_cutdowns_into_the_next_prediction() {
    let homes = homes(220);
    let open = winter_runner(&homes).run();
    let closed = CampaignBuilder::new(
        &homes,
        &WeatherModel::winter(),
        &Horizon::new(8, 0, Season::Winter),
    )
    .predictor(FixedPredictor(WeatherRegression::calibrated()))
    .feedback(ClosedLoop)
    .build()
    .run();
    assert!(closed.all_converged(), "{closed}");

    // The feedback delta is reported per day: exactly the days whose
    // negotiations shaved energy fed a reduced series into history.
    assert!(closed.total_feedback().value() > 0.0);
    for day in &closed.days {
        let shaved_today: f64 = closed
            .outcomes
            .iter()
            .filter(|o| o.day == day.day)
            .map(|o| o.energy_shaved().value())
            .sum();
        assert_eq!(
            day.feedback_delta.value() > 0.0,
            shaved_today > 0.0,
            "day {}: feedback delta iff energy was shaved",
            day.day.index
        );
    }

    // Until the first negotiated day the two campaigns see identical
    // history, so their first day's peaks agree exactly (only the
    // feedback delta differs — the closed loop fed its shave back).
    assert_eq!(open.days[0].peaks, closed.days[0].peaks);
    assert_eq!(open.outcomes[0].report, closed.outcomes[0].report);

    // From then on the closed loop predicts post-negotiation (lower)
    // consumption: later peaks shrink, so the campaign shaves less in
    // total than the open loop that keeps re-detecting already-shaved
    // demand (fixed-seed regression for the feedback direction).
    assert!(
        closed.total_energy_shaved() < open.total_energy_shaved(),
        "closed {} !< open {}",
        closed.total_energy_shaved(),
        open.total_energy_shaved()
    );
    assert_eq!(open.total_feedback(), KilowattHours::ZERO);
}

#[test]
fn marginal_cost_stop_buys_convergence_for_strictly_less_outlay() {
    let homes = homes(220);
    let unconditional = winter_runner(&homes).run();
    let stopped = CampaignBuilder::new(
        &homes,
        &WeatherModel::winter(),
        &Horizon::new(8, 0, Season::Winter),
    )
    .predictor(FixedPredictor(WeatherRegression::calibrated()))
    .stop_rule(MarginalCostStop)
    .build()
    .run();

    // The stop rule fired somewhere and saved real money.
    assert!(
        stopped.economics.economic_stops > 0,
        "the stop rule must bite on this population: {stopped}"
    );
    assert!(
        stopped.total_rewards() < unconditional.total_rewards(),
        "stop outlay {} !< unconditional {}",
        stopped.total_rewards(),
        unconditional.total_rewards()
    );

    // Every negotiated interval still converges, and every interval ends
    // within the detector's tolerance of the capacity line: residual
    // overuse never reaches the threshold that makes a peak negotiable,
    // so no stopped peak would be re-detected.
    assert!(stopped.all_converged(), "{stopped}");
    for o in &stopped.outcomes {
        assert!(
            o.report.final_overuse_fraction() < 0.02,
            "{}: residual overuse {:.3} above the negotiable threshold",
            o.label,
            o.report.final_overuse_fraction()
        );
    }

    // The utility's net position (avoided expensive production minus
    // rewards) improves under the stop rule.
    assert!(
        stopped.economics.net_gain >= unconditional.economics.net_gain,
        "stop net gain {} < unconditional {}",
        stopped.economics.net_gain.value(),
        unconditional.economics.net_gain.value()
    );

    // The closed-loop + stop combination keeps both guarantees.
    let closed_stopped = CampaignBuilder::new(
        &homes,
        &WeatherModel::winter(),
        &Horizon::new(8, 0, Season::Winter),
    )
    .predictor(FixedPredictor(WeatherRegression::calibrated()))
    .feedback(ClosedLoop)
    .stop_rule(MarginalCostStop)
    .build()
    .run();
    assert!(closed_stopped.all_converged(), "{closed_stopped}");
    assert!(closed_stopped.total_feedback().value() > 0.0);
}
