//! Tier-1 conformance: the landed workspace is lint-clean.
//!
//! This runs the exact same pass as `loadbal-lint --workspace` and the
//! CI `lint-invariants` job, so a determinism or safety regression
//! fails plain `cargo test -q` — no extra tooling required.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = loadbal_lint::lint_workspace(root).expect("workspace walk succeeds");
    assert!(
        findings.is_empty(),
        "the workspace must be lint-clean; fix or waive (with a reason) each of:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn slab_hot_path_is_inside_the_lint_walk() {
    // The struct-of-arrays kernels are the hottest deterministic code
    // in the workspace; a walk that silently skipped them would let a
    // wall-clock read or HashMap iteration land in the demand path
    // unflagged. Pin both that the file is visited and that the
    // determinism rules fire on slab-shaped code.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = loadbal_lint::workspace_files(root).expect("workspace walk succeeds");
    assert!(
        files.iter().any(|f| f.ends_with("crates/grid/src/slab.rs")),
        "crates/grid/src/slab.rs must be covered by the workspace lint pass"
    );
    // Fixture: the same rules that keep slab.rs clean must flag a
    // planted violation in a file at its path.
    let planted =
        "pub fn aggregate_demand_slab_with() {\n    let t0 = std::time::Instant::now();\n}\n";
    let findings = loadbal_lint::lint_file("crates/grid/src/slab.rs", planted);
    assert!(
        findings.iter().any(|f| f.to_string().contains("det-time")),
        "det-time must fire on a wall-clock read planted in slab.rs: {findings:?}"
    );
}

#[test]
fn json_rendering_of_the_workspace_pass_is_well_formed() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = loadbal_lint::lint_workspace(root).expect("workspace walk succeeds");
    let json = loadbal_lint::findings_to_json(&findings);
    // Clean tree renders as an empty JSON array either way.
    assert_eq!(json.trim(), "[]");
}
