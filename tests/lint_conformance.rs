//! Tier-1 conformance: the landed workspace is lint-clean.
//!
//! This runs the exact same pass as `loadbal-lint --workspace` and the
//! CI `lint-invariants` job, so a determinism or safety regression
//! fails plain `cargo test -q` — no extra tooling required.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = loadbal_lint::lint_workspace(root).expect("workspace walk succeeds");
    assert!(
        findings.is_empty(),
        "the workspace must be lint-clean; fix or waive (with a reason) each of:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn json_rendering_of_the_workspace_pass_is_well_formed() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = loadbal_lint::lint_workspace(root).expect("workspace walk succeeds");
    let json = loadbal_lint::findings_to_json(&findings);
    // Clean tree renders as an empty JSON array either way.
    assert_eq!(json.trim(), "[]");
}
