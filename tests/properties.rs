//! Property-based tests (proptest) on the core invariants:
//! the §3.1 monotonic concession protocol, the §6 reward formula, and
//! deterministic replay of the distributed runtime.

use loadbal::core::beta::BetaPolicy;
use loadbal::core::concession::{verify_announcements, verify_bids};
use loadbal::core::distributed::run_distributed;
use loadbal::core::preferences::CustomerPreferences;
use loadbal::core::reward::{
    overuse_fraction, predicted_use_with_cutdown, RewardFormula, RewardTable, DEFAULT_LEVELS,
};
use loadbal::core::session::{CustomerProfile, ScenarioBuilder};
use loadbal::core::utility_agent::UtilityAgentConfig;
use loadbal::massim::clock::SimDuration;
use loadbal::massim::network::NetworkModel;
use powergrid::time::Interval;
use powergrid::units::{Fraction, KilowattHours, Money};
use proptest::prelude::*;

fn arb_customer() -> impl Strategy<Value = CustomerProfile> {
    (0.2f64..5.0, 0.3f64..1.0, 3.0f64..9.0, 1.0f64..1.2).prop_map(
        |(k, ceiling, predicted, allowance)| CustomerProfile {
            predicted_use: KilowattHours(predicted),
            allowed_use: KilowattHours(predicted * allowance),
            preferences: CustomerPreferences::from_base_scaled(k, Fraction::clamped(ceiling)),
        },
    )
}

fn arb_beta_policy() -> impl Strategy<Value = BetaPolicy> {
    prop_oneof![
        (0.1f64..8.0).prop_map(BetaPolicy::constant),
        (0.1f64..4.0).prop_map(BetaPolicy::adaptive),
        ((0.5f64..8.0), (0.3f64..1.0)).prop_map(|(b, d)| BetaPolicy::annealing(b, d)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// §3.1: every reward-table negotiation terminates, announcements
    /// dominate their predecessors, and bids never retreat — for any
    /// population and β policy.
    #[test]
    fn concession_invariants_hold(
        customers in prop::collection::vec(arb_customer(), 1..40),
        policy in arb_beta_policy(),
        margin in 0.6f64..1.0,
    ) {
        let total: f64 = customers.iter().map(|c| c.predicted_use.value()).sum();
        let mut builder = ScenarioBuilder::new()
            .normal_use(KilowattHours(total * margin))
            .config(UtilityAgentConfig::paper().with_beta_policy(policy));
        for c in customers {
            builder = builder.customer(c);
        }
        let report = builder.build().run();
        prop_assert!(report.converged());
        let tables: Vec<_> = report.rounds().iter().filter_map(|r| r.table.as_deref().cloned()).collect();
        prop_assert!(verify_announcements(&tables).is_ok());
        let bids: Vec<_> = report.rounds().iter().map(|r| r.bids.clone()).collect();
        prop_assert!(verify_bids(&bids).is_ok());
        // Overuse is non-increasing round over round.
        let mut prev = f64::INFINITY;
        for r in report.rounds() {
            let ou = r.overuse_fraction(report.normal_use());
            prop_assert!(ou <= prev + 1e-9);
            prev = ou;
        }
    }

    /// §6: the update rule never exceeds max_reward, never decreases, and
    /// is monotone in overuse and β.
    #[test]
    fn reward_formula_properties(
        reward in 0.0f64..30.0,
        overuse in 0.0f64..2.0,
        beta in 0.0f64..10.0,
    ) {
        let f = RewardFormula::paper();
        let next = f.next_reward(Money(reward), overuse, beta);
        prop_assert!(next.value() <= f.max_reward.value() + 1e-9);
        prop_assert!(next.value() + 1e-12 >= reward);
        // Monotone in overuse.
        let more = f.next_reward(Money(reward), overuse + 0.1, beta);
        prop_assert!(more >= next);
        // Monotone in beta.
        let steeper = f.next_reward(Money(reward), overuse, beta + 0.5);
        prop_assert!(steeper >= next);
    }

    /// §6: `predicted_use_with_cutdown` is bounded by both inputs and
    /// non-increasing in the cut-down.
    #[test]
    fn predicted_use_properties(
        predicted in 0.0f64..20.0,
        allowed in 0.0f64..20.0,
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let p = KilowattHours(predicted);
        let a = KilowattHours(allowed);
        let lo = Fraction::clamped(cut_a.min(cut_b));
        let hi = Fraction::clamped(cut_a.max(cut_b));
        let at_lo = predicted_use_with_cutdown(p, a, lo);
        let at_hi = predicted_use_with_cutdown(p, a, hi);
        prop_assert!(at_lo <= p);
        prop_assert!(at_hi <= at_lo + KilowattHours(1e-12));
        prop_assert!(at_lo.value() >= 0.0);
    }

    /// Customer responses always come from the announced table, never
    /// retreat, and respect the physical ceiling.
    #[test]
    fn customer_response_properties(
        k in 0.1f64..5.0,
        ceiling in 0.0f64..1.0,
        reward_at in 1.0f64..30.0,
        prev in 0.0f64..0.5,
    ) {
        let prefs = CustomerPreferences::from_base_scaled(k, Fraction::clamped(ceiling));
        let table = RewardTable::quadratic(
            Interval::new(0, 8),
            &DEFAULT_LEVELS,
            Money(reward_at),
            Fraction::clamped(0.4),
        );
        let prev = Fraction::clamped((prev * 10.0).round() / 10.0);
        let bid = prefs.respond(&table, prev);
        prop_assert!(bid >= prev);
        if bid > prev {
            prop_assert!(table.levels().any(|l| l == bid));
            prop_assert!(bid <= prefs.max_cutdown());
        }
    }

    /// Distributed replay: identical seeds produce identical outcomes
    /// even over lossy, high-latency networks.
    #[test]
    fn distributed_replay_is_deterministic(seed in 0u64..500) {
        let scenario = ScenarioBuilder::random(15, 0.35, seed).build();
        let net = NetworkModel::uniform(1, 25).with_drop_probability(0.15);
        let a = run_distributed(&scenario, net.clone(), seed, SimDuration::from_ticks(150));
        let b = run_distributed(&scenario, net, seed, SimDuration::from_ticks(150));
        prop_assert_eq!(a, b);
    }

    /// Overuse-fraction algebra: consistent with its definition.
    #[test]
    fn overuse_fraction_definition(total in 0.0f64..500.0, normal in 0.1f64..500.0) {
        let f = overuse_fraction(KilowattHours(total), KilowattHours(normal));
        prop_assert!((f - (total - normal) / normal).abs() < 1e-9);
    }
}
