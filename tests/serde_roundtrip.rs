//! Serialization coverage (C-SERDE). No serde *format* crate
//! (`serde_json`, `bincode`, ...) is in the sanctioned offline set, so a
//! byte-level round-trip cannot be exercised here; instead this test
//! asserts at compile time that every data-structure type implements
//! `Serialize + DeserializeOwned`, and checks value-semantics (clone
//! equality, pure re-runs) that a round-trip would rely on.

use loadbal::core::message::Msg;
use loadbal::core::preferences::CustomerPreferences;
use loadbal::core::reward::{RewardTable, DEFAULT_LEVELS};
use loadbal::core::session::{NegotiationReport, Scenario};
use loadbal::prelude::*;
use powergrid::time::Interval;

fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}

#[test]
fn key_types_implement_serde() {
    // Compile-time: the paper's data structures are all serializable,
    // so scenarios and outcomes can be persisted or shipped over IPC.
    assert_serde::<Scenario>();
    assert_serde::<NegotiationReport>();
    assert_serde::<Msg>();
    assert_serde::<RewardTable>();
    assert_serde::<CustomerPreferences>();
    assert_serde::<powergrid::units::KilowattHours>();
    assert_serde::<powergrid::units::Fraction>();
    assert_serde::<powergrid::series::Series>();
    assert_serde::<powergrid::household::Household>();
    assert_serde::<massim::metrics::Metrics>();
    assert_serde::<desire::term::Atom>();
    assert_serde::<desire::kb::Rule>();
    assert_serde::<desire::trace::Trace>();
}

#[test]
fn scenario_clone_equality() {
    let scenario = ScenarioBuilder::paper_figure_6().build();
    let copy = scenario.clone();
    assert_eq!(scenario, copy);
    // Cloned scenarios run to identical reports (pure functions of the
    // scenario value).
    assert_eq!(scenario.run(), copy.run());
}

#[test]
fn reward_table_clone_equality() {
    let t = RewardTable::quadratic(
        Interval::new(72, 80),
        &DEFAULT_LEVELS,
        powergrid::units::Money(17.0),
        Fraction::clamped(0.4),
    );
    assert_eq!(t.clone(), t);
}
