//! Property tests pinning the struct-of-arrays population backend's
//! central claim: for any population, axis, weather and seed, the
//! batched slab kernels produce **byte-identical** results to the
//! per-object `Household` paths — demand synthesis, interval
//! flexibility, saving potential, and whole negotiated seasons run
//! through either backend of [`PopulationRef`] at any thread count.

use loadbal::core::campaign::{CampaignBuilder, CampaignRunner, ClosedLoop, FixedPredictor};
use loadbal::core::fleet::FleetRunner;
use powergrid::calendar::Horizon;
use powergrid::demand::aggregate_demand_ref;
use powergrid::household::{DemandScratch, Household, HouseholdId};
use powergrid::population::PopulationBuilder;
use powergrid::prediction::MovingAverage;
use powergrid::slab::{
    interval_flexibility_slab, saving_potential_slab, PopulationRef, PopulationSlab,
};
use powergrid::time::{Interval, TimeAxis};
use powergrid::units::KilowattHours;
use powergrid::weather::{Season, WeatherModel};
use proptest::prelude::*;
use std::num::NonZeroUsize;

fn arb_axis() -> impl Strategy<Value = TimeAxis> {
    prop_oneof![Just(TimeAxis::hourly()), Just(TimeAxis::quarter_hourly()),]
}

/// Standard households with arbitrary occupancies and non-contiguous
/// ids — the slab must reproduce any mix, not just builder output.
fn arb_households() -> impl Strategy<Value = Vec<Household>> {
    prop::collection::vec((0u64..1_000_000, 1u32..6), 1..40).prop_map(|specs| {
        specs
            .into_iter()
            .map(|(id, occupants)| Household::standard(HouseholdId(id), occupants))
            .collect()
    })
}

/// An interval that may be empty, interior, or overhang the day (the
/// kernels clip; the object path sweeps the whole day — results must
/// still agree bit for bit).
fn arb_interval(max_slots: usize) -> impl Strategy<Value = Interval> {
    (0..=max_slots, 0..=max_slots * 2).prop_map(|(a, b)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        Interval::new(lo, hi)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One day of aggregate demand: the register-blocked slab kernel
    /// returns bit-for-bit the curve the per-object scratch path sums.
    #[test]
    fn slab_demand_is_byte_identical_to_object_demand(
        homes in arb_households(),
        axis in arb_axis(),
        mean_seed in 0u64..1000,
        seed in 0u64..1000,
    ) {
        let slab = PopulationSlab::from_households(&homes);
        let weather = WeatherModel::winter().temperatures(&axis, mean_seed);
        let object = aggregate_demand_ref(PopulationRef::Objects(&homes), &weather, &axis, seed);
        let slab_curve = aggregate_demand_ref(slab.view().into(), &weather, &axis, seed);
        prop_assert_eq!(object, slab_curve);
    }

    /// Interval flexibility and saving potential: per household, the
    /// fused clipped-interval sweep delivers exactly the `(usage,
    /// potential)` pair the object path computes, and the slab fold
    /// equals the object fold.
    #[test]
    fn slab_flexibility_is_byte_identical_per_household(
        homes in arb_households(),
        axis in arb_axis(),
        mean_temp in -12.0f64..22.0,
        seed in 0u64..1000,
        interval in arb_interval(96),
    ) {
        let slab = PopulationSlab::from_households(&homes);
        let mut scratch = DemandScratch::new(&axis);
        let mut pairs = Vec::with_capacity(homes.len());
        interval_flexibility_slab(
            slab.view(), &axis, mean_temp, seed, interval, &mut scratch,
            |i, usage, potential| pairs.push((i, usage, potential)),
        );
        prop_assert_eq!(pairs.len(), homes.len());
        for (h, (i, usage, potential)) in homes.iter().zip(&pairs) {
            let clipped = interval.intersect(Interval::new(0, axis.slots_per_day()));
            let (obj_usage, obj_potential) =
                h.interval_flexibility(&axis, mean_temp, seed, clipped);
            prop_assert_eq!(homes[*i].id(), h.id());
            prop_assert_eq!(usage.value().to_bits(), obj_usage.value().to_bits());
            prop_assert_eq!(potential.value().to_bits(), obj_potential.value().to_bits());
        }
        let slab_total =
            saving_potential_slab(slab.view(), &axis, mean_temp, seed, interval, &mut scratch);
        let object_total = homes.iter().fold(KilowattHours::ZERO, |acc, h| {
            acc + h.saving_potential(&axis, mean_temp, seed, interval)
        });
        prop_assert_eq!(slab_total.value().to_bits(), object_total.value().to_bits());
    }

    /// The builder's two exits agree: `build_slab(seed)` is exactly
    /// the slab of `build(seed)` — same RNG stream, same field values.
    #[test]
    fn build_slab_equals_slab_of_build(
        households in 1usize..120,
        seed in 0u64..1000,
    ) {
        let builder = PopulationBuilder::new().households(households);
        prop_assert_eq!(
            builder.build_slab(seed),
            PopulationSlab::from_households(&builder.build(seed))
        );
    }
}

fn season_cell<'a>(
    pop: PopulationRef<'a>,
    weather: &'a WeatherModel,
    horizon: &'a Horizon,
) -> CampaignRunner<'a> {
    CampaignBuilder::new_ref(pop, weather, horizon)
        .warmup_days(2)
        .predictor(FixedPredictor(MovingAverage::new(2)))
        .feedback(ClosedLoop)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A whole negotiated fleet season is backend-agnostic: one slab
    /// sharded zero-copy across cells returns byte for byte what the
    /// same households run as object slices do — for any shard count
    /// and any worker-pool size, parallel or sequential.
    #[test]
    fn fleet_season_is_backend_agnostic_across_thread_counts(
        households in 20usize..60,
        cells in 1usize..4,
        threads in 1usize..5,
        seed in 0u64..40,
    ) {
        let weather = WeatherModel::winter();
        let horizon = Horizon::new(5, 0, Season::Winter);
        let builder = PopulationBuilder::new().households(households);
        let slab = builder.build_slab(seed);
        let homes = builder.build(seed);
        let threads = NonZeroUsize::new(threads).expect("non-zero");

        let slab_fleet = FleetRunner::new()
            .sharded_slab(&slab, cells, |pop, _| season_cell(pop, &weather, &horizon))
            .threads(threads);
        let mut object_fleet = FleetRunner::new();
        let mut start = 0;
        for (i, shard) in slab.shards(cells).into_iter().enumerate() {
            let end = start + shard.len();
            object_fleet = object_fleet.cell(
                format!("shard-{i}"),
                season_cell(PopulationRef::Objects(&homes[start..end]), &weather, &horizon),
            );
            start = end;
        }
        prop_assert_eq!(start, homes.len());
        let object_fleet = object_fleet.threads(threads);

        let slab_report = slab_fleet.run();
        prop_assert_eq!(&slab_report, &object_fleet.run());
        prop_assert_eq!(&slab_report, &slab_fleet.run_sequential());
    }
}
