//! Property tests pinning the PR-1 determinism claim: a
//! [`ScenarioSweep`] run in parallel is *byte-identical* to sequential
//! execution — for arbitrary grids, seeds, methods and thread counts —
//! and the grid-backed campaign runner inherits the same guarantee,
//! open- and closed-loop (where each day's negotiated cut-downs feed
//! the next day's prediction, so any nondeterminism would compound).

use loadbal::core::campaign::{CampaignBuilder, ClosedLoop, FixedPredictor, MarginalCostStop};
use loadbal::prelude::*;
use powergrid::calendar::Horizon;
use powergrid::prediction::MovingAverage;
use proptest::prelude::*;
use std::num::NonZeroUsize;

fn arb_method() -> impl Strategy<Value = AnnouncementMethod> {
    prop_oneof![
        Just(AnnouncementMethod::RewardTables),
        Just(AnnouncementMethod::Offer),
        Just(AnnouncementMethod::RequestForBids),
    ]
}

fn arb_cell() -> impl Strategy<Value = (usize, f64, u64, AnnouncementMethod)> {
    (2usize..25, 0.05f64..0.6, 0u64..1000, arb_method())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core claim: for any grid and any worker-thread count, the
    /// parallel sweep returns exactly what the sequential one does —
    /// labels, order, and every byte of every report.
    #[test]
    fn parallel_sweep_is_byte_identical_to_sequential(
        cells in prop::collection::vec(arb_cell(), 1..12),
        threads in 1usize..9,
    ) {
        let mut sweep = ScenarioSweep::new()
            .threads(NonZeroUsize::new(threads).expect("threads ≥ 1"));
        for (i, (n, overuse, seed, method)) in cells.iter().enumerate() {
            sweep = sweep.point_with(
                format!("cell{i}"),
                ScenarioBuilder::random(*n, *overuse, *seed).build(),
                *method,
            );
        }
        let parallel = sweep.run();
        let sequential = sweep.run_sequential();
        prop_assert_eq!(&parallel, &sequential);
        // And re-running is a pure replay.
        prop_assert_eq!(&parallel, &sweep.run());
    }

    /// The same grid fanned with different thread counts always agrees:
    /// parallelism is an execution detail, never an input.
    #[test]
    fn thread_count_never_changes_outcomes(
        n in 5usize..30,
        overuse in 0.1f64..0.5,
        seeds in 1u64..6,
    ) {
        let base = ScenarioSweep::new().seeded_grid("grid", n, overuse, 0..seeds, |b| b);
        let reference = base.run_sequential();
        for threads in [1usize, 2, 4, 7] {
            let sweep = base.clone().threads(NonZeroUsize::new(threads).expect("≥1"));
            prop_assert_eq!(&sweep.run(), &reference, "threads = {}", threads);
        }
    }

    /// The campaign runner built on the sweep inherits byte-determinism
    /// end to end (population → prediction → peaks → negotiations).
    #[test]
    fn campaign_parallel_equals_sequential(
        households in 20usize..60,
        pop_seed in 0u64..50,
        threads in 1usize..5,
    ) {
        let homes = PopulationBuilder::new().households(households).build(pop_seed);
        let horizon = Horizon::new(5, 0, Season::Winter);
        let runner = CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
            .warmup_days(2)
            .threads(NonZeroUsize::new(threads).expect("threads ≥ 1"))
            .predictor(FixedPredictor(MovingAverage::new(2)))
            .build();
        prop_assert_eq!(runner.run(), runner.run_sequential());
    }

    /// The execution-mode transparency claim at the campaign layer: a
    /// campaign whose peaks negotiate as seeded simulations over a
    /// *perfect* network produces the **same bytes** as the in-process
    /// sync campaign — for any grid, any report tier, any thread count,
    /// any base seed. Per-peak seeds derive from (day, peak) positions,
    /// so worker scheduling can never leak into the result.
    #[test]
    fn distributed_clean_campaign_is_byte_identical_to_sync(
        households in 20usize..50,
        pop_seed in 0u64..50,
        threads in 1usize..5,
        tier_ix in 0usize..3,
        base_seed in 0u64..1000,
    ) {
        let tier = [ReportTier::Aggregate, ReportTier::Settlement, ReportTier::FullTrace][tier_ix];
        let homes = PopulationBuilder::new().households(households).build(pop_seed);
        let horizon = Horizon::new(5, 0, Season::Winter);
        let build = |mode: ExecutionMode| {
            CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
                .warmup_days(2)
                .threads(NonZeroUsize::new(threads).expect("threads ≥ 1"))
                .predictor(FixedPredictor(MovingAverage::new(2)))
                .feedback(ClosedLoop)
                .report_tier(tier)
                .execution(mode)
                .build()
        };
        let sync = build(ExecutionMode::sync()).run_sequential();
        let distributed = build(ExecutionMode::distributed_clean().with_seed(base_seed));
        let (parallel, traffic) = distributed.run_instrumented();
        prop_assert_eq!(&parallel, &sync, "tier {:?}, threads {}", tier, threads);
        prop_assert_eq!(&distributed.run_sequential(), &sync);
        // The perfect network carried real messages and lost nothing.
        prop_assert_eq!(traffic.negotiations as usize, sync.negotiations());
        if traffic.negotiations > 0 {
            prop_assert!(traffic.messages_sent > 0);
        }
        prop_assert_eq!(traffic.messages_dropped, 0);
        prop_assert_eq!(traffic.deadline_forced_rounds, 0);
    }

    /// A *closed-loop* campaign — later days depend on earlier outcomes
    /// through the feedback into prediction history — is byte-identical
    /// across thread counts, with and without the marginal-cost stop.
    #[test]
    fn closed_loop_campaign_is_byte_identical_across_thread_counts(
        households in 20usize..60,
        pop_seed in 0u64..50,
        stop_flag in 0u8..2,
    ) {
        let stop = stop_flag == 1;
        let homes = PopulationBuilder::new().households(households).build(pop_seed);
        let horizon = Horizon::new(5, 0, Season::Winter);
        let build = |threads: usize| {
            let b = CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
                .warmup_days(2)
                .threads(NonZeroUsize::new(threads).expect("threads ≥ 1"))
                .predictor(FixedPredictor(MovingAverage::new(2)))
                .feedback(ClosedLoop);
            if stop { b.stop_rule(MarginalCostStop).build() } else { b.build() }
        };
        let reference = build(1).run_sequential();
        for threads in [1usize, 2, 4, 7] {
            let runner = build(threads);
            prop_assert_eq!(&runner.run(), &reference, "threads = {}", threads);
            prop_assert_eq!(&runner.run_sequential(), &reference);
        }
    }
}
