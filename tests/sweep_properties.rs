//! Property tests pinning the PR-1 determinism claim: a
//! [`ScenarioSweep`] run in parallel is *byte-identical* to sequential
//! execution — for arbitrary grids, seeds, methods and thread counts —
//! and the grid-backed campaign runner inherits the same guarantee,
//! open- and closed-loop (where each day's negotiated cut-downs feed
//! the next day's prediction, so any nondeterminism would compound).

use loadbal::core::campaign::{CampaignBuilder, ClosedLoop, FixedPredictor, MarginalCostStop};
use loadbal::prelude::*;
use powergrid::calendar::Horizon;
use powergrid::prediction::MovingAverage;
use proptest::prelude::*;
use std::num::NonZeroUsize;

fn arb_method() -> impl Strategy<Value = AnnouncementMethod> {
    prop_oneof![
        Just(AnnouncementMethod::RewardTables),
        Just(AnnouncementMethod::Offer),
        Just(AnnouncementMethod::RequestForBids),
    ]
}

fn arb_cell() -> impl Strategy<Value = (usize, f64, u64, AnnouncementMethod)> {
    (2usize..25, 0.05f64..0.6, 0u64..1000, arb_method())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core claim: for any grid and any worker-thread count, the
    /// parallel sweep returns exactly what the sequential one does —
    /// labels, order, and every byte of every report.
    #[test]
    fn parallel_sweep_is_byte_identical_to_sequential(
        cells in prop::collection::vec(arb_cell(), 1..12),
        threads in 1usize..9,
    ) {
        let mut sweep = ScenarioSweep::new()
            .threads(NonZeroUsize::new(threads).expect("threads ≥ 1"));
        for (i, (n, overuse, seed, method)) in cells.iter().enumerate() {
            sweep = sweep.point_with(
                format!("cell{i}"),
                ScenarioBuilder::random(*n, *overuse, *seed).build(),
                *method,
            );
        }
        let parallel = sweep.run();
        let sequential = sweep.run_sequential();
        prop_assert_eq!(&parallel, &sequential);
        // And re-running is a pure replay.
        prop_assert_eq!(&parallel, &sweep.run());
    }

    /// The same grid fanned with different thread counts always agrees:
    /// parallelism is an execution detail, never an input.
    #[test]
    fn thread_count_never_changes_outcomes(
        n in 5usize..30,
        overuse in 0.1f64..0.5,
        seeds in 1u64..6,
    ) {
        let base = ScenarioSweep::new().seeded_grid("grid", n, overuse, 0..seeds, |b| b);
        let reference = base.run_sequential();
        for threads in [1usize, 2, 4, 7] {
            let sweep = base.clone().threads(NonZeroUsize::new(threads).expect("≥1"));
            prop_assert_eq!(&sweep.run(), &reference, "threads = {}", threads);
        }
    }

    /// The campaign runner built on the sweep inherits byte-determinism
    /// end to end (population → prediction → peaks → negotiations).
    #[test]
    fn campaign_parallel_equals_sequential(
        households in 20usize..60,
        pop_seed in 0u64..50,
        threads in 1usize..5,
    ) {
        let homes = PopulationBuilder::new().households(households).build(pop_seed);
        let horizon = Horizon::new(5, 0, Season::Winter);
        let runner = CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
            .warmup_days(2)
            .threads(NonZeroUsize::new(threads).expect("threads ≥ 1"))
            .predictor(FixedPredictor(MovingAverage::new(2)))
            .build();
        prop_assert_eq!(runner.run(), runner.run_sequential());
    }

    /// The execution-mode transparency claim at the campaign layer: a
    /// campaign whose peaks negotiate as seeded simulations over a
    /// *perfect* network produces the **same bytes** as the in-process
    /// sync campaign — for any grid, any report tier, any thread count,
    /// any base seed. Per-peak seeds derive from (day, peak) positions,
    /// so worker scheduling can never leak into the result.
    #[test]
    fn distributed_clean_campaign_is_byte_identical_to_sync(
        households in 20usize..50,
        pop_seed in 0u64..50,
        threads in 1usize..5,
        tier_ix in 0usize..3,
        base_seed in 0u64..1000,
    ) {
        let tier = [ReportTier::Aggregate, ReportTier::Settlement, ReportTier::FullTrace][tier_ix];
        let homes = PopulationBuilder::new().households(households).build(pop_seed);
        let horizon = Horizon::new(5, 0, Season::Winter);
        let build = |mode: ExecutionMode| {
            CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
                .warmup_days(2)
                .threads(NonZeroUsize::new(threads).expect("threads ≥ 1"))
                .predictor(FixedPredictor(MovingAverage::new(2)))
                .feedback(ClosedLoop)
                .report_tier(tier)
                .execution(mode)
                .build()
        };
        let sync = build(ExecutionMode::sync()).run_sequential();
        let distributed = build(ExecutionMode::distributed_clean().with_seed(base_seed));
        let (parallel, traffic) = distributed.run_instrumented();
        prop_assert_eq!(&parallel, &sync, "tier {:?}, threads {}", tier, threads);
        prop_assert_eq!(&distributed.run_sequential(), &sync);
        // The perfect network carried real messages and lost nothing.
        prop_assert_eq!(traffic.negotiations as usize, sync.negotiations());
        if traffic.negotiations > 0 {
            prop_assert!(traffic.messages_sent > 0);
        }
        prop_assert_eq!(traffic.messages_dropped, 0);
        prop_assert_eq!(traffic.deadline_forced_rounds, 0);
    }

    /// A *closed-loop* campaign — later days depend on earlier outcomes
    /// through the feedback into prediction history — is byte-identical
    /// across thread counts, with and without the marginal-cost stop.
    #[test]
    fn closed_loop_campaign_is_byte_identical_across_thread_counts(
        households in 20usize..60,
        pop_seed in 0u64..50,
        stop_flag in 0u8..2,
    ) {
        let stop = stop_flag == 1;
        let homes = PopulationBuilder::new().households(households).build(pop_seed);
        let horizon = Horizon::new(5, 0, Season::Winter);
        let build = |threads: usize| {
            let b = CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
                .warmup_days(2)
                .threads(NonZeroUsize::new(threads).expect("threads ≥ 1"))
                .predictor(FixedPredictor(MovingAverage::new(2)))
                .feedback(ClosedLoop);
            if stop { b.stop_rule(MarginalCostStop).build() } else { b.build() }
        };
        let reference = build(1).run_sequential();
        for threads in [1usize, 2, 4, 7] {
            let runner = build(threads);
            prop_assert_eq!(&runner.run(), &reference, "threads = {}", threads);
            prop_assert_eq!(&runner.run_sequential(), &reference);
        }
    }

    /// The full adaptive stack — rolling predictor re-selection,
    /// same-day renegotiation and experience-tuned β — is byte-identical
    /// across thread counts: all three self-tuning loops live in the
    /// sequential day boundary, never inside the parallel peak fan-out.
    #[test]
    fn adaptive_campaign_is_byte_identical_across_thread_counts(
        households in 20usize..60,
        pop_seed in 0u64..50,
        window in 2usize..5,
        every in 1usize..4,
        passes in 1usize..4,
    ) {
        let homes = PopulationBuilder::new().households(households).build(pop_seed);
        let horizon = Horizon::new(6, 0, Season::Winter);
        let build = |threads: usize| {
            CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
                .warmup_days(2)
                .threads(NonZeroUsize::new(threads).expect("threads ≥ 1"))
                .predictor(RollingWindow::standard(window, every))
                .feedback(RenegotiateResidual::new(passes, 0.005))
                .tuning(AdaptiveTuning)
                .stop_rule(MarginalCostStop)
                .build()
        };
        let reference = build(1).run_sequential();
        for threads in [1usize, 2, 4, 7] {
            let runner = build(threads);
            prop_assert_eq!(&runner.run(), &reference, "threads = {}", threads);
            prop_assert_eq!(&runner.run_sequential(), &reference);
        }
    }

    /// An adaptive campaign on the clean distributed driver reproduces
    /// the sync season byte for byte: the day-boundary loops (tuning,
    /// renegotiation staging, predictor re-selection) see identical
    /// settlement reports whichever driver negotiated them.
    #[test]
    fn adaptive_distributed_clean_campaign_is_byte_identical_to_sync(
        households in 20usize..50,
        pop_seed in 0u64..50,
        threads in 1usize..5,
        base_seed in 0u64..1000,
    ) {
        let homes = PopulationBuilder::new().households(households).build(pop_seed);
        let horizon = Horizon::new(6, 0, Season::Winter);
        let build = |mode: ExecutionMode| {
            CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
                .warmup_days(2)
                .threads(NonZeroUsize::new(threads).expect("threads ≥ 1"))
                .predictor(RollingWindow::standard(3, 2))
                .feedback(RenegotiateResidual::new(2, 0.005))
                .tuning(AdaptiveTuning)
                .stop_rule(MarginalCostStop)
                .execution(mode)
                .build()
        };
        let sync = build(ExecutionMode::sync()).run_sequential();
        let distributed = build(ExecutionMode::distributed_clean().with_seed(base_seed));
        prop_assert_eq!(&distributed.run(), &sync);
        prop_assert_eq!(&distributed.run_sequential(), &sync);
    }

    /// Renegotiation regression: every pass label stays within the
    /// configured bound, and no negotiation — primary or renegotiated —
    /// ever increases the overuse it was asked to remove.
    #[test]
    fn renegotiation_is_bounded_and_never_increases_overuse(
        households in 20usize..60,
        pop_seed in 0u64..50,
        passes in 1usize..4,
    ) {
        let homes = PopulationBuilder::new().households(households).build(pop_seed);
        let horizon = Horizon::new(6, 0, Season::Winter);
        let report = CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
            .warmup_days(2)
            .predictor(FixedPredictor(MovingAverage::new(2)))
            .feedback(RenegotiateResidual::new(passes, 0.0))
            .stop_rule(MarginalCostStop)
            .build()
            .run();
        for o in &report.outcomes {
            if let Some(ix) = o.label.find("#r") {
                let pass: usize = o.label[ix + 2..].parse().expect("pass suffix");
                prop_assert!(pass >= 1 && pass <= passes, "label {}", o.label);
            }
            prop_assert!(
                o.report.final_overuse().value() <= o.report.initial_overuse().value() + 1e-9,
                "{} increased overuse",
                o.label
            );
        }
    }

    /// A renegotiation rule whose threshold no residual can reach is
    /// exactly the closed loop: the delegation changes nothing until a
    /// residual peak actually qualifies.
    #[test]
    fn unreachable_renegotiation_threshold_is_plain_closed_loop(
        households in 20usize..60,
        pop_seed in 0u64..50,
    ) {
        let homes = PopulationBuilder::new().households(households).build(pop_seed);
        let horizon = Horizon::new(5, 0, Season::Winter);
        let renegotiated = CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
            .warmup_days(2)
            .predictor(FixedPredictor(MovingAverage::new(2)))
            .feedback(RenegotiateResidual::new(3, 10.0))
            .build()
            .run();
        let plain = CampaignBuilder::new(&homes, &WeatherModel::winter(), &horizon)
            .warmup_days(2)
            .predictor(FixedPredictor(MovingAverage::new(2)))
            .feedback(ClosedLoop)
            .build()
            .run();
        prop_assert_eq!(&renegotiated, &plain);
    }
}
